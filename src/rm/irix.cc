#include "src/rm/irix.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"
#include "src/obs/counters.h"

namespace pdpa {

IrixTimeShare::IrixTimeShare(Params params, Rng rng) : params_(params), rng_(rng) {
  PDPA_CHECK_GE(params.fixed_ml, 1);
  PDPA_CHECK_GE(params.migration_cost, 0.0);
  PDPA_CHECK_LE(params.migration_cost, 1.0);
  BindInstruments(Registry::Default());
}

void IrixTimeShare::BindInstruments(Registry& registry) {
  dispatch_ticks_ = registry.counter("policy.irix.dispatch_ticks");
}

AllocationPlan IrixTimeShare::OnJobStart(const PolicyContext& ctx, JobId job) {
  for (const PolicyJobInfo& info : ctx.jobs) {
    if (info.id == job) {
      // The SGI-MP library spawns OMP_NUM_THREADS kernel threads up front.
      for (int i = 0; i < info.request; ++i) {
        threads_.push_back(Thread{job, -1, false, 0.0});
      }
      break;
    }
  }
  return AllocationPlan{};
}

AllocationPlan IrixTimeShare::OnJobFinish(const PolicyContext& ctx, JobId job) {
  (void)ctx;
  std::erase_if(threads_, [job](const Thread& t) { return t.job == job; });
  return AllocationPlan{};
}

bool IrixTimeShare::ShouldAdmit(const PolicyContext& ctx) const {
  return static_cast<int>(ctx.jobs.size()) < params_.fixed_ml;
}

int IrixTimeShare::ThreadCountOf(JobId job) const {
  int count = 0;
  for (const Thread& t : threads_) {
    if (t.job == job) {
      ++count;
    }
  }
  return count;
}

void IrixTimeShare::AdjustThreadCounts(const PolicyContext& ctx, int ncpus) {
  if (ctx.jobs.empty()) {
    return;
  }
  // Fair share per running application (the SGI-MP heuristic reacts to the
  // load average; the effect is a slow drift of each team toward ncpus/ml).
  const int fair = std::max(1, ncpus / static_cast<int>(ctx.jobs.size()));
  for (const PolicyJobInfo& info : ctx.jobs) {
    const int have = ThreadCountOf(info.id);
    const int floor_threads =
        std::max(1, static_cast<int>(info.request * params_.omp_min_fraction));
    const int want = std::min(info.request, std::max(fair, floor_threads));
    if (have > want) {
      // Retire the hungriest surplus threads (they are spinning anyway).
      int to_remove = std::min(params_.omp_adjust_step, have - want);
      for (auto it = threads_.rbegin(); it != threads_.rend() && to_remove > 0;) {
        if (it->job == info.id) {
          it = decltype(it)(threads_.erase(std::next(it).base()));
          --to_remove;
        } else {
          ++it;
        }
      }
    } else if (have < want) {
      for (int i = 0; i < std::min(params_.omp_adjust_step, want - have); ++i) {
        threads_.push_back(Thread{info.id, -1, false, 0.0});
      }
    }
  }
}

std::map<JobId, TimeShare> IrixTimeShare::TimeShareTick(Machine& machine,
                                                        const PolicyContext& ctx, SimDuration dt,
                                                        std::vector<CpuHandoff>* handoffs) {
  dispatch_ticks_->Increment();
  std::map<JobId, TimeShare> shares;
  for (const PolicyJobInfo& info : ctx.jobs) {
    shares[info.id] = TimeShare{0.0, 1.0};
  }
  const int ncpus = machine.num_cpus();
  clock_ += dt;
  if (params_.omp_dynamic && clock_ >= next_adjust_) {
    AdjustThreadCounts(ctx, ncpus);
    next_adjust_ = clock_ + params_.omp_adjust_period;
  }
  const int nthreads = static_cast<int>(threads_.size());
  if (nthreads == 0) {
    // No runnable threads: every CPU goes idle.
    for (int c = 0; c < ncpus; ++c) {
      const JobId prev_owner = machine.OwnerOf(c);
      if (prev_owner != kIdleJob) {
        machine.SetOwner(c, kIdleJob);
        if (handoffs != nullptr) {
          handoffs->push_back(CpuHandoff{c, prev_owner, kIdleJob});
        }
      }
    }
    return shares;
  }

  // Dispatch order: lowest effective vruntime first, where a thread that ran
  // last tick gets an affinity/timeslice bonus. This is a coarse model of
  // IRIX's priority aging with affinity.
  const double bonus_s = TimeToSeconds(params_.affinity_bonus);
  std::vector<int> order(threads_.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const Thread& ta = threads_[static_cast<std::size_t>(a)];
    const Thread& tb = threads_[static_cast<std::size_t>(b)];
    const double ka = ta.vruntime_s - (ta.running ? bonus_s : 0.0);
    const double kb = tb.vruntime_s - (tb.running ? bonus_s : 0.0);
    return ka < kb;
  });

  const int to_run = std::min(ncpus, nthreads);
  std::vector<bool> cpu_taken(static_cast<std::size_t>(ncpus), false);
  std::map<JobId, int> migrations;
  std::map<JobId, int> running_count;

  // Pass 1: selected threads reclaim their previous CPU when possible.
  for (int i = 0; i < to_run; ++i) {
    Thread& t = threads_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    if (t.last_cpu >= 0 && t.last_cpu < ncpus && !cpu_taken[static_cast<std::size_t>(t.last_cpu)]) {
      cpu_taken[static_cast<std::size_t>(t.last_cpu)] = true;
    }
  }
  // Pass 2: place every selected thread; the ones whose CPU was claimed by
  // someone else (or who never ran) take the lowest free CPU and migrate.
  std::vector<bool> cpu_assigned(static_cast<std::size_t>(ncpus), false);
  for (int i = 0; i < to_run; ++i) {
    Thread& t = threads_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])];
    int cpu = -1;
    if (t.last_cpu >= 0 && t.last_cpu < ncpus &&
        !cpu_assigned[static_cast<std::size_t>(t.last_cpu)] &&
        cpu_taken[static_cast<std::size_t>(t.last_cpu)]) {
      cpu = t.last_cpu;
    } else {
      for (int c = 0; c < ncpus; ++c) {
        if (!cpu_taken[static_cast<std::size_t>(c)] && !cpu_assigned[static_cast<std::size_t>(c)]) {
          cpu = c;
          break;
        }
      }
      if (cpu < 0) {
        // All non-reclaimed CPUs exhausted: steal any unassigned CPU.
        for (int c = 0; c < ncpus; ++c) {
          if (!cpu_assigned[static_cast<std::size_t>(c)]) {
            cpu = c;
            break;
          }
        }
      }
      if (cpu >= 0 && t.last_cpu >= 0 && cpu != t.last_cpu) {
        ++migrations[t.job];
        ++total_thread_migrations_;
      }
    }
    PDPA_CHECK_GE(cpu, 0);
    cpu_assigned[static_cast<std::size_t>(cpu)] = true;
    const JobId prev_owner = machine.OwnerOf(cpu);
    if (prev_owner != t.job) {
      machine.SetOwner(cpu, t.job);
      if (handoffs != nullptr) {
        handoffs->push_back(CpuHandoff{cpu, prev_owner, t.job});
      }
    }
    t.last_cpu = cpu;
    t.running = true;
    // Work imbalance jitter desynchronizes dispatch epochs and sustains the
    // migration churn observed on the real machine.
    t.vruntime_s += TimeToSeconds(dt) * (1.0 + rng_.Uniform(-params_.vruntime_jitter,
                                                            params_.vruntime_jitter));
    ++running_count[t.job];
  }
  // Threads beyond the CPU count wait this tick.
  for (int i = to_run; i < nthreads; ++i) {
    threads_[static_cast<std::size_t>(order[static_cast<std::size_t>(i)])].running = false;
  }
  // Idle CPUs (fewer threads than CPUs) release their owner.
  for (int c = 0; c < ncpus; ++c) {
    if (!cpu_assigned[static_cast<std::size_t>(c)] && machine.OwnerOf(c) != kIdleJob) {
      const JobId prev_owner = machine.OwnerOf(c);
      machine.SetOwner(c, kIdleJob);
      if (handoffs != nullptr) {
        handoffs->push_back(CpuHandoff{c, prev_owner, kIdleJob});
      }
    }
  }

  const double overcommit =
      static_cast<double>(nthreads) / static_cast<double>(ncpus);
  const double contention =
      1.0 / (1.0 + params_.overcommit_penalty * std::max(0.0, overcommit - 1.0));
  for (auto& [job, share] : shares) {
    const int running = running_count.contains(job) ? running_count[job] : 0;
    share.effective_procs = static_cast<double>(running);
    double overhead = contention;
    if (running > 0) {
      const int migs = migrations.contains(job) ? migrations[job] : 0;
      overhead *= std::max(0.1, 1.0 - params_.migration_cost * static_cast<double>(migs) /
                                          static_cast<double>(running));
    }
    share.overhead = overhead;
  }
  return shares;
}

}  // namespace pdpa
