// SchedulingPolicy: the interface the NANOS Resource Manager drives.
//
// Space-sharing policies (PDPA, Equipartition, Equal_efficiency) return
// per-job processor *counts*; the RM turns counts into concrete CPU sets.
// Time-sharing policies (the native-IRIX model) bypass partitioning and
// schedule kernel threads per tick instead.
#ifndef SRC_RM_POLICY_H_
#define SRC_RM_POLICY_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/ids.h"
#include "src/common/logging.h"
#include "src/common/time_types.h"
#include "src/machine/machine.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/runtime/self_analyzer.h"

namespace pdpa {

// Per-tick outcome for one job under a time-sharing policy.
struct TimeShare {
  // Average CPUs held by the job's threads over the tick.
  double effective_procs = 0.0;
  // Multiplicative progress factor in (0, 1]: migration and contention cost.
  double overhead = 1.0;
};

// The RM's view of one running job, passed to policies.
struct PolicyJobInfo {
  JobId id = kIdleJob;
  // Processors the user requested (OMP_NUM_THREADS / MPI process count).
  int request = 0;
  // Processors currently allocated.
  int alloc = 0;
  SimTime arrival = 0;
  // Rigid job: the runtime cannot change the process count; allocations
  // below the request fold processes onto shared CPUs.
  bool rigid = false;
  bool has_report = false;
  PerfReport last_report;
};

struct PolicyContext {
  int total_cpus = 0;
  int free_cpus = 0;
  SimTime now = 0;
  // Running jobs in arrival order.
  std::vector<PolicyJobInfo> jobs;
};

// A reallocation plan: target processor count per job. Jobs omitted from the
// plan keep their current allocation.
using AllocationPlan = std::map<JobId, int>;

class SchedulingPolicy {
 public:
  virtual ~SchedulingPolicy() = default;

  virtual std::string name() const = 0;

  // Flight-recorder sink for policy-internal decisions (PDPA automaton
  // transitions). Borrowed; null (the default) disables recording.
  void set_event_log(EventLog* log) { event_log_ = log; }

  // Per-run counter registry (borrowed). The ResourceManager calls this with
  // the run's registry before driving the policy; a policy constructed
  // standalone (unit tests, benches) records into Registry::Default() until
  // then. Null is ignored.
  void set_registry(Registry* registry) {
    if (registry != nullptr) {
      registry_ = registry;
      BindInstruments(*registry);
    }
  }

  // Human-readable per-application search state for the time-series sampler
  // ("NO_REF"/"INC"/"DEC"/"STABLE" under PDPA). Empty when the policy keeps
  // no such state.
  virtual const char* AppStateName(JobId job) const {
    (void)job;
    return "";
  }

  // True for thread-level time-sharing policies (IRIX); the RM then calls
  // TimeShareTick every tick instead of applying allocation plans.
  virtual bool is_time_sharing() const { return false; }

  // A new job entered the system (already present in ctx.jobs with alloc 0).
  // Returns the plan including the newcomer's initial allocation.
  virtual AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) = 0;

  // `job` finished; it is no longer in ctx.jobs.
  virtual AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) = 0;

  // A performance report arrived from the runtime of `report.job`.
  virtual AllocationPlan OnReport(const PolicyContext& ctx, const PerfReport& report) {
    (void)ctx;
    (void)report;
    return AllocationPlan{};
  }

  // Periodic scheduler quantum.
  virtual AllocationPlan OnQuantum(const PolicyContext& ctx) {
    (void)ctx;
    return AllocationPlan{};
  }

  // True when OnQuantum is a guaranteed no-op (the policy reallocates only
  // at job starts/finishes/reports). Lets the resource manager skip the
  // quantum periodic entirely under tick elision: between materialized
  // instants nothing observable can change, so the quantum cap on the
  // elision horizon is unnecessary. Must stay false for any policy whose
  // OnQuantum can return a non-empty plan or mutate policy state.
  virtual bool quantum_passive() const { return false; }

  // True when OnReport is a guaranteed no-op (empty plan, no policy-state
  // mutation) *and* ShouldAdmit ignores performance reports. Together with
  // quantum_passive this means iteration boundaries carry no scheduling
  // consequence, so the resource manager's boundary-batching fast path may
  // cross many boundaries per tick and drain the queued reports late (see
  // Params::boundary_batch). Must stay false for any policy that reacts to
  // reports (PDPA, Equal_efficiency).
  virtual bool report_passive() const { return false; }

  // Multiprogramming-level coordination: may the queuing system start one
  // more job right now? Baseline policies enforce a fixed ML; PDPA applies
  // its coordinated rule.
  virtual bool ShouldAdmit(const PolicyContext& ctx) const = 0;

  // Thread-level scheduling step for time-sharing policies. Assigns CPU
  // owners in `machine` directly, appends the reassignments to `handoffs`,
  // and returns each job's share of the tick.
  virtual std::map<JobId, TimeShare> TimeShareTick(Machine& machine, const PolicyContext& ctx,
                                                   SimDuration dt,
                                                   std::vector<CpuHandoff>* handoffs) {
    (void)machine;
    (void)ctx;
    (void)dt;
    (void)handoffs;
    PDPA_CHECK(false) << "TimeShareTick on a space-sharing policy";
    return {};
  }

 protected:
  // Re-resolves the policy's instrument pointers from `registry`. Counting
  // policies override this and call it from their constructor with
  // Registry::Default() so instruments exist before set_registry.
  virtual void BindInstruments(Registry& registry) { (void)registry; }

  EventLog* event_log_ = nullptr;
  Registry* registry_ = &Registry::Default();
};

}  // namespace pdpa

#endif  // SRC_RM_POLICY_H_
