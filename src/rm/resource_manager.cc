#include "src/rm/resource_manager.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {

// Audit hook: active only in PDPA_AUDIT builds (the CI Debug job); expands
// to nothing otherwise so the hot path carries no trace of it.
#ifdef PDPA_AUDIT
#define PDPA_RM_AUDIT(where) AuditInvariants(where)
#else
#define PDPA_RM_AUDIT(where) \
  do {                       \
  } while (false)
#endif

ResourceManager::ResourceManager(Params params, std::unique_ptr<SchedulingPolicy> policy,
                                 Simulation* sim, TraceRecorder* trace, Rng rng)
    : params_(params),
      policy_(std::move(policy)),
      sim_(sim),
      trace_(trace),
      rng_(rng),
      machine_(params.num_cpus) {
  PDPA_CHECK(policy_ != nullptr);
  PDPA_CHECK(sim_ != nullptr);
  PDPA_CHECK_GT(params.tick, 0);
  PDPA_CHECK_GE(params.quantum, params.tick);
  // The whole stack of one run shares the simulation's registry; rebinding
  // the policy here is what isolates concurrent sweep cells from each other.
  registry_ = &sim_->registry();
  policy_->set_registry(registry_);
  jobs_started_ = registry_->counter("rm.jobs_started");
  jobs_finished_ = registry_->counter("rm.jobs_finished");
  reallocations_ = registry_->counter("rm.reallocations");
  plans_applied_ = registry_->counter("rm.plans_applied");
  cpu_handoffs_ = registry_->counter("rm.cpu_handoffs");
  cpu_migrations_ = registry_->counter("rm.cpu_migrations");
  perf_reports_ = registry_->counter("rm.perf_reports");
  ticks_fired_ = registry_->counter("rm.ticks");
  ticks_elided_ = registry_->counter("rm.ticks_elided");
  free_cpus_gauge_ = registry_->gauge("machine.free_cpus");
  report_efficiency_ = registry_->histogram("rm.report_efficiency",
                                            {0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2});
}

void ResourceManager::Start() {
  PDPA_CHECK(!tick_active_);
  tick_origin_ = sim_->now();
  advanced_to_ = tick_origin_;
  elide_ = !params_.exact_ticks && !policy_->is_time_sharing() && trace_ == nullptr;
  quantum_passive_ = elide_ && policy_->quantum_passive();
  fast_path_ = params_.boundary_batch && quantum_passive_ && policy_->report_passive() &&
               events_ == nullptr && timeseries_ == nullptr;
  next_ts_sample_ = sim_->now() + params_.quantum;
  // The tick is scheduled before the quantum task so that when tick ==
  // quantum their first firings keep the historical tick-then-quantum order.
  tick_active_ = true;
  ScheduleTickAt(tick_origin_ + params_.tick);
  // A quantum-passive policy's OnQuantum is a guaranteed no-op, so under
  // elision the periodic task would only force materializations that change
  // nothing observable; skip it entirely and let the horizon run free.
  if (!quantum_passive_) {
    quantum_task_ = sim_->SchedulePeriodic(sim_->now() + params_.quantum, params_.quantum,
                                           [this](SimTime now) { OnQuantum(now); });
  }
}

ResourceManager::ResumeState ResourceManager::ResumeStateNow() const {
  PDPA_CHECK(tick_active_);
  ResumeState state;
  state.origin = tick_origin_;
  state.advanced_to = advanced_to_;
  state.next_ts_sample = next_ts_sample_;
  return state;
}

void ResourceManager::StartResumed(const ResumeState& state) {
  PDPA_CHECK(!tick_active_);
  PDPA_CHECK(order_.empty()) << "StartResumed on a non-quiescent resource manager";
  tick_origin_ = state.origin;
  advanced_to_ = state.advanced_to;
  elide_ = !params_.exact_ticks && !policy_->is_time_sharing() && trace_ == nullptr;
  quantum_passive_ = elide_ && policy_->quantum_passive();
  fast_path_ = params_.boundary_batch && quantum_passive_ && policy_->report_passive() &&
               events_ == nullptr && timeseries_ == nullptr;
  next_ts_sample_ = state.next_ts_sample;
  tick_active_ = true;
  // Recreate the cold run's pending tick. Tick before quantum, as in
  // Start(), so same-instant firings keep the tick-then-quantum order.
  if (!elide_) {
    // Fine grid: the cold run's last prefix tick fired at advanced_to.
    ScheduleTickAt(advanced_to_ + params_.tick);
  } else if (quantum_passive_) {
    // The sentinel prefix ran the exact elision schedule of a cold run of
    // this policy, so recomputing the horizon from the resume state
    // reproduces the cold run's pending tick — or leaves it parked.
    // Computed directly instead of via ScheduleNextTick: the elision
    // counter bump for this parking decision happened in the prefix and is
    // already part of the restored registry state.
    const SimTime horizon = ElisionHorizon(advanced_to_);
    if (horizon < kHorizonNever) {
      ScheduleTickAt(std::max(horizon, advanced_to_ + params_.tick));
    }
  } else {
    // A non-passive policy resumed from the quantum-passive sentinel
    // prefix: the sentinel parked earlier than a cold run of this policy
    // would have (its advanced_to may lie several quanta back), so jump
    // straight to the cold run's pending tick — the first quantum after the
    // divergence point. Elision counters of non-passive resumes are not
    // part of the byte contract.
    ScheduleTickAt(GridCeil(NextQuantumAfter(sim_->now())));
  }
  if (!quantum_passive_) {
    quantum_task_ = sim_->SchedulePeriodic(NextQuantumAfter(sim_->now()), params_.quantum,
                                           [this](SimTime now) { OnQuantum(now); });
  }
}

void ResourceManager::Stop() {
  if (tick_active_) {
    // An elided run may have a span pending behind the parked tick. A fine
    // run at this instant has fired every grid tick at or before now (the
    // driver stops between events), so advance to exactly that point. The
    // span holds no completion boundary (a completion's grid tick at or
    // before now would already have fired), so no job can finish here; under
    // boundary batching it may cross report boundaries, whose queued reports
    // are dropped with the run — the fast-path gate guarantees no sink or
    // policy could have observed their drain.
    if (elide_) {
      AdvanceAllTo(GridFloorAtOrBefore(sim_->now()));
    }
    if (tick_pending_) {
      sim_->events().Cancel(tick_event_);
      tick_pending_ = false;
    }
    tick_active_ = false;
  }
  if (quantum_task_ >= 0) {
    // Cancel (not just deactivate) so no dead chain event lingers: the
    // cluster engine parks stopped node simulations and requires their
    // queues empty before AdvanceTo-warping the clock to the next arrival.
    sim_->CancelPeriodic(quantum_task_);
    quantum_task_ = -1;
  }
  // Flush the tail windows of jobs still running (incomplete runs), so the
  // time-series integral matches alloc_integral_us() even on cutoffs.
  if (timeseries_ != nullptr) {
    const SimTime now = sim_->now();
    for (int slot : order_) {
      FlushAppSample(slot, now);
    }
  }
}

const PolicyContext& ResourceManager::FillContext(SimTime now) const {
  scratch_ctx_.total_cpus = machine_.num_cpus();
  scratch_ctx_.free_cpus = machine_.FreeCpus();
  scratch_ctx_.now = now;
  scratch_ctx_.jobs.clear();
  // Straight gather from the slot-parallel hot-state arrays; no Application
  // dereference on this path.
  for (int slot : order_) {
    const std::size_t s = static_cast<std::size_t>(slot);
    if (hot_.job_id[s] == kIdleJob) {
      continue;  // Freed mid-CheckCompletions; compacted after the loop.
    }
    PolicyJobInfo info;
    info.id = hot_.job_id[s];
    info.request = hot_.request[s];
    info.alloc = hot_.alloc[s];
    info.arrival = hot_.arrival[s];
    info.rigid = hot_.rigid[s] != 0;
    scratch_ctx_.jobs.push_back(info);
  }
  return scratch_ctx_;
}

int ResourceManager::AllocateSlot() {
  if (!free_slots_.empty()) {
    const int slot = free_slots_.back();
    free_slots_.pop_back();
    return slot;
  }
  slots_.emplace_back();
  return static_cast<int>(slots_.size()) - 1;
}

bool ResourceManager::CanStartJob() const {
  ProfScope prof_scope(profiler_, SpanId::kPolicyDecide);
  return policy_->ShouldAdmit(FillContext(sim_->now()));
}

void ResourceManager::StartJob(JobId job, const AppProfile& profile, int request, SimTime now,
                               bool rigid) {
  PDPA_CHECK_GE(job, 0);
  PDPA_CHECK(SlotOf(job) < 0) << "job " << job << " already running";
  const int effective_request = request > 0 ? request : profile.default_request;
  PDPA_CHECK_GT(effective_request, 0);

  // A fine run has fired every grid tick before this arrival; bring the
  // running jobs to the same point before the machine changes under them.
  CatchUp(now);

  // The slot index must exist before the Application is built: the app
  // adopts the slot's dynamics columns in the shared hot-state arena.
  const int slot = AllocateSlot();
  hot_.EnsureSlot(slot);
  auto app =
      std::make_unique<Application>(job, profile, params_.app_costs, &hot_, slot);
  app->set_request(effective_request);
  app->set_rigid(rigid);
  auto binding = std::make_unique<NthLibBinding>(std::move(app), params_.analyzer, rng_.Fork(),
                                                 registry_);
  binding->set_report_callback(
      [this](const PerfReport& report) { pending_reports_.push_back(report); });

  {
    RunningJob& running = slots_[static_cast<std::size_t>(slot)];
    running.binding = std::move(binding);
    running.id = job;
    const std::size_t s = static_cast<std::size_t>(slot);
    hot_.job_id[s] = job;
    hot_.arrival[s] = now;
    hot_.request[s] = effective_request;
    hot_.rigid[s] = rigid ? 1 : 0;
    hot_.alloc_integral_us[s] = 0.0;
    running.last_speedup = 0.0;
    running.last_efficiency = 0.0;
    running.sampled_integral_us = 0.0;
    running.last_sample = now;
  }
  if (static_cast<std::size_t>(job) >= slot_of_job_.size()) {
    slot_of_job_.resize(static_cast<std::size_t>(job) + 1, -1);
  }
  slot_of_job_[static_cast<std::size_t>(job)] = slot;
  order_.push_back(slot);
  jobs_started_->Increment();

  if (policy_->is_time_sharing()) {
    // Time sharing: the runtime spawns `request` threads and the OS
    // schedules them; no partition, no SelfAnalyzer coordination.
    NthLibBinding& b = *slots_[static_cast<std::size_t>(slot)].binding;
    b.app().SetAllocation(effective_request, now);
    b.app().Start(now);
    {
      ProfScope prof_scope(profiler_, SpanId::kPolicyDecide);
      (void)policy_->OnJobStart(FillContext(now), job);
    }
    PDPA_LOG(Info) << "job " << job << " started (time-sharing, " << effective_request
                   << " threads)";
    return;
  }

  const AllocationPlan plan = [&] {
    ProfScope prof_scope(profiler_, SpanId::kPolicyDecide);
    return policy_->OnJobStart(FillContext(now), job);
  }();
  ApplyPlan(plan, now, "start");
  NthLibBinding& b = *slots_[static_cast<std::size_t>(slot)].binding;
  PDPA_CHECK_GT(b.app().allocated(), 0)
      << policy_->name() << " started job " << job << " without processors";
  PDPA_LOG(Info) << "job " << job << " started with " << b.app().allocated() << "/"
                 << effective_request << " cpus";
  if (rigid) {
    // Rigid jobs are not iterative/malleable from the SelfAnalyzer's point
    // of view (Sec. 3.1: "requires applications to be iterative and
    // malleable"); they run without the baseline protocol.
    b.StartJobWithoutAnalyzer(now);
  } else {
    b.StartJob(now);
  }
  // The newcomer must be stepped on the fine grid until a materialized tick
  // recomputes the horizon; pull a parked tick back to the next grid point.
  ScheduleTickAt(advanced_to_ + params_.tick);
  PDPA_RM_AUDIT("start");
}

int ResourceManager::AllocationOf(JobId job) const {
  const int slot = SlotOf(job);
  return slot < 0 ? 0 : hot_.alloc[static_cast<std::size_t>(slot)];
}

std::map<JobId, double> ResourceManager::alloc_integral_us() const {
  std::map<JobId, double> merged = finished_integral_us_;
  for (int slot : order_) {
    const std::size_t s = static_cast<std::size_t>(slot);
    merged[hot_.job_id[s]] = hot_.alloc_integral_us[s];
  }
  return merged;
}

#ifdef PDPA_AUDIT
void ResourceManager::AuditInvariants(const char* where) const {
  // Every owned CPU belongs to a job with a live slot. Machine::owner_ is
  // single-valued per CPU, so double-ownership cannot be represented; the
  // reachable failure mode is a CPU still booked to a released job.
  for (int cpu = 0; cpu < machine_.num_cpus(); ++cpu) {
    const JobId owner = machine_.OwnerOf(cpu);
    if (owner == kIdleJob) {
      continue;
    }
    PDPA_CHECK(SlotOf(owner) >= 0)
        << where << ": cpu " << cpu << " owned by job " << owner << " with no live slot";
  }
  if (policy_->is_time_sharing()) {
    // Time sharing decouples thread counts from CPU ownership (the OS
    // multiplexes); only the ownership/slot check above applies.
    return;
  }
  // Per-job bookkeeping matches the machine partition, and the partition
  // fits the machine.
  long long total_alloc = 0;
  for (int slot : order_) {
    const RunningJob& running = slots_[static_cast<std::size_t>(slot)];
    if (running.id == kIdleJob) {
      continue;  // Freed mid-CheckCompletions; compacted after the loop.
    }
    PDPA_CHECK(running.binding != nullptr) << where << ": job " << running.id << " has no binding";
    const int alloc = running.binding->app().allocated();
    PDPA_CHECK_EQ(machine_.CountOf(running.id), alloc)
        << where << ": job " << running.id << " machine/application allocation mismatch";
    total_alloc += alloc;
  }
  PDPA_CHECK_LE(total_alloc, static_cast<long long>(machine_.num_cpus()))
      << where << ": allocations exceed the machine";
}
#endif

void ResourceManager::ApplyPlan(const AllocationPlan& plan, SimTime now, const char* trigger) {
  if (plan.empty()) {
    return;
  }
  // Clamp the named jobs to [1, request]; jobs the plan omits keep their
  // CPUs untouched (ApplyPartial), so no full-machine map is materialized.
  // A plan may include the not-yet-started newcomer whose allocation is 0.
  plan_scratch_.clear();
  std::string plan_text;
  for (const auto& [job, count] : plan) {
    const int slot = SlotOf(job);
    if (slot < 0) {
      continue;  // Finished in the meantime.
    }
    const int clamped = std::clamp(count, 1, hot_.request[static_cast<std::size_t>(slot)]);
    plan_scratch_.emplace_back(job, clamped);
    if (events_ != nullptr) {
      if (!plan_text.empty()) {
        plan_text.push_back(' ');
      }
      plan_text += StrFormat("%d:%d", job, clamped);
    }
  }
  plans_applied_->Increment();
  if (events_ != nullptr && !plan_text.empty()) {
    events_->AllocDecision(now, trigger, plan_text);
  }
  if (plan_scratch_.empty()) {
    return;
  }
  const std::vector<CpuHandoff> handoffs = machine_.ApplyPartial(plan_scratch_);
  if (trace_ != nullptr) {
    trace_->OnHandoffs(now, handoffs);
  }
  if (!handoffs.empty()) {
    int migrations = 0;
    for (const CpuHandoff& handoff : handoffs) {
      if (handoff.from != kIdleJob && handoff.to != kIdleJob) {
        ++migrations;
      }
    }
    cpu_handoffs_->Increment(static_cast<long long>(handoffs.size()));
    cpu_migrations_->Increment(migrations);
    if (events_ != nullptr) {
      events_->CpuHandoffs(now, static_cast<int>(handoffs.size()), migrations);
    }
  }
  for (const auto& [job, count] : plan_scratch_) {
    NthLibBinding& binding = *slots_[static_cast<std::size_t>(slot_of_job_[job])].binding;
    if (binding.app().allocated() != count) {
      // Initial assignment (from zero) is not a reallocation.
      if (binding.app().allocated() > 0) {
        ++total_reallocations_;
        reallocations_->Increment();
      }
      binding.SetProcessors(count, now);
    }
  }
  PDPA_RM_AUDIT(trigger);
}

void ResourceManager::DrainReports(SimTime now) {
  // Reports generated while advancing applications are processed after the
  // tick completes, mirroring the asynchronous shared-memory communication
  // between NthLib and the RM in the real system. The drain buffer is
  // reused: after the swap, pending_reports_ holds the previous (cleared)
  // batch's capacity.
  while (!pending_reports_.empty()) {
    report_batch_.clear();
    report_batch_.swap(pending_reports_);
    for (const PerfReport& report : report_batch_) {
      const int slot = SlotOf(report.job);
      if (slot < 0) {
        continue;
      }
      RunningJob& running = slots_[static_cast<std::size_t>(slot)];
      running.last_speedup = report.speedup;
      running.last_efficiency = report.efficiency;
      perf_reports_->Increment();
      report_efficiency_->Observe(report.efficiency);
      if (events_ != nullptr) {
        events_->PerfSample(now, report.job, report.procs, report.speedup, report.efficiency);
      }
      if (fast_path_) {
        // Report-passive policy: OnReport is a guaranteed no-op, so skip the
        // O(jobs) context fill and the empty-plan application outright. Gated
        // on the fast path (not bare report_passive) so committed profiles'
        // policy.decide span hits stay as pinned.
        continue;
      }
      const AllocationPlan plan = [&] {
        ProfScope prof_scope(profiler_, SpanId::kPolicyDecide);
        return policy_->OnReport(FillContext(now), report);
      }();
      ApplyPlan(plan, now, "report");
    }
  }
}

void ResourceManager::FlushAppSample(int slot, SimTime now) {
  if (timeseries_ == nullptr) {
    return;
  }
  RunningJob& running = slots_[static_cast<std::size_t>(slot)];
  const double integral = hot_.alloc_integral_us[static_cast<std::size_t>(slot)];
  const double delta = integral - running.sampled_integral_us;
  // Windows must have positive width for the alloc column to integrate back
  // to the delta; clamp the degenerate zero-width case (job finished at the
  // exact instant of the previous sample) to one microsecond.
  const SimTime t_end = now > running.last_sample ? now : running.last_sample + 1;
  if (delta <= 0.0 && now <= running.last_sample) {
    return;  // Nothing accrued and no time elapsed.
  }
  TimeSeriesSampler::AppPoint point;
  point.t_start = running.last_sample;
  point.t_end = t_end;
  point.job = running.id;
  point.alloc = delta / static_cast<double>(t_end - running.last_sample);
  point.speedup = running.last_speedup;
  point.efficiency = running.last_efficiency;
  point.state = policy_->AppStateName(running.id);
  timeseries_->AddApp(std::move(point));
  running.sampled_integral_us = integral;
  running.last_sample = t_end;
}

void ResourceManager::SampleTimeseries(SimTime now) {
  const int free = machine_.FreeCpus();
  free_cpus_gauge_->Set(free);
  if (timeseries_ == nullptr) {
    return;
  }
  for (int slot : order_) {
    FlushAppSample(slot, now);
  }
  TimeSeriesSampler::MachinePoint point;
  point.t = now;
  point.free_cpus = free;
  point.running = static_cast<int>(order_.size());
  point.queued = queue_depth_ ? queue_depth_() : 0;
  point.utilization = machine_.num_cpus() > 0
                          ? static_cast<double>(machine_.num_cpus() - free) /
                                static_cast<double>(machine_.num_cpus())
                          : 0.0;
  timeseries_->AddMachine(point);
}

void ResourceManager::CheckCompletions(SimTime now) {
  bool finished_any = false;
  // Jobs start in arrival order and JobIds are assigned in arrival order, so
  // iterating order_ visits finishers exactly as the JobId-ordered map did.
  // order_ may gain stale (idle) entries during the loop; they are skipped
  // and compacted once at the end — no per-finisher O(n) erase.
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const int slot = order_[i];
    const std::size_t s = static_cast<std::size_t>(slot);
    RunningJob& running = slots_[s];
    // Linear finished-flag scan over the hot-state array; the binding is
    // only touched for actual finishers.
    if (hot_.job_id[s] == kIdleJob || !hot_.finished[s]) {
      continue;
    }
    const JobId job = running.id;
    const SimTime finish_time = running.binding->app().finish_time();
    // Final partial window, so per-job time-series integrals are exact.
    FlushAppSample(slot, finish_time);
    const std::vector<CpuHandoff> handoffs = machine_.ReleaseJob(job);
    if (trace_ != nullptr) {
      trace_->OnHandoffs(now, handoffs);
    }
    cpu_handoffs_->Increment(static_cast<long long>(handoffs.size()));
    jobs_finished_->Increment();
    PDPA_LOG(Info) << "job " << job << " finished";
    finished_integral_us_[job] = hot_.alloc_integral_us[s];
    slot_of_job_[static_cast<std::size_t>(job)] = -1;
    running.id = kIdleJob;
    running.binding.reset();
    hot_.ResetSlot(slot);
    free_slots_.push_back(slot);
    PDPA_RM_AUDIT("release");
    const AllocationPlan plan = [&] {
      ProfScope prof_scope(profiler_, SpanId::kPolicyDecide);
      return policy_->OnJobFinish(FillContext(now), job);
    }();
    ApplyPlan(plan, now, "finish");
    if (on_finish_) {
      on_finish_(job, finish_time);
    }
    finished_any = true;
  }
  if (finished_any) {
    order_.erase(std::remove_if(order_.begin(), order_.end(),
                                [this](int slot) {
                                  return slots_[static_cast<std::size_t>(slot)].id == kIdleJob;
                                }),
                 order_.end());
    if (on_state_change_) {
      on_state_change_(now);
    }
  }
}

void ResourceManager::AdvanceSpan(SimTime from, SimDuration dt) {
  for (int slot : order_) {
    const std::size_t s = static_cast<std::size_t>(slot);
    slots_[s].binding->Tick(from, dt);
    // Exact under elision: allocation x integer-microsecond products are
    // integer-valued doubles, so one span-sized addend equals the per-tick
    // sum a fine run accumulates.
    hot_.alloc_integral_us[s] += static_cast<double>(hot_.alloc[s]) * static_cast<double>(dt);
  }
}

void ResourceManager::AdvanceAllTo(SimTime target) {
  if (target > advanced_to_) {
    AdvanceSpan(advanced_to_, target - advanced_to_);
    advanced_to_ = target;
  }
}

void ResourceManager::CatchUp(SimTime now) {
  if (!tick_active_ || !elide_) {
    return;
  }
  // Everything in (advanced_to_, last grid < now] is span a fine run has
  // already ticked through. No *material* boundary lies inside it (the tick
  // was parked past it only if nothing before the parked instant could
  // change scheduling state); under boundary batching, passive report
  // boundaries may be crossed here and their reports drain at the next tick.
  AdvanceAllTo(GridFloorBefore(now));
}

SimTime ResourceManager::GridCeil(SimTime t) const {
  if (t <= tick_origin_) {
    return tick_origin_;
  }
  const SimTime k = (t - tick_origin_ + params_.tick - 1) / params_.tick;
  return tick_origin_ + k * params_.tick;
}

SimTime ResourceManager::GridFloorBefore(SimTime t) const {
  if (t <= tick_origin_) {
    return advanced_to_;
  }
  const SimTime k = (t - tick_origin_ - 1) / params_.tick;
  return std::max(advanced_to_, tick_origin_ + k * params_.tick);
}

SimTime ResourceManager::GridFloorAtOrBefore(SimTime t) const {
  if (t < tick_origin_) {
    return advanced_to_;
  }
  const SimTime k = (t - tick_origin_) / params_.tick;
  return std::max(advanced_to_, tick_origin_ + k * params_.tick);
}

SimTime ResourceManager::NextQuantumAfter(SimTime t) const {
  const SimTime k = (t - tick_origin_) / params_.quantum + 1;
  return tick_origin_ + k * params_.quantum;
}

void ResourceManager::ScheduleTickAt(SimTime when) {
  if (!tick_active_) {
    return;
  }
  if (tick_pending_ && tick_at_ == when) {
    return;
  }
  if (tick_pending_) {
    sim_->events().Cancel(tick_event_);
  }
  tick_at_ = when;
  tick_pending_ = true;
  tick_event_ = sim_->events().Schedule(when, [this] { OnTickEvent(); });
}

void ResourceManager::OnTickEvent() {
  tick_pending_ = false;
  OnTick(tick_at_);
}

SimTime ResourceManager::ElisionHorizon(SimTime now) {
  // One cache-linear pass over the slot-parallel hot-state arrays: every
  // Application republishes its ready_at/next_boundary after each state
  // change, so the values are current as of this instant (the per-tick
  // Advance just ran) and no Application is dereferenced here.
  SimTime min_boundary = kHorizonNever;
  const SimTime* ready_at = hot_.ready_at.data();
  const SimTime* next_boundary = hot_.next_boundary.data();
  if (fast_path_) {
    // Boundary batching: park at the earliest *material* stop instead of the
    // earliest boundary. MaterialStop returns grid-aligned instants, so no
    // further GridCeil; the quantum (passive) and sample (no sink) caps are
    // vacuous under the fast-path gate.
    SimTime horizon = kHorizonNever;
    for (int slot : order_) {
      if (ready_at[slot] > now) {
        return 0;  // Unsteady (frozen or mid-warmup): stay on the fine grid.
      }
      horizon = std::min(horizon, MaterialStop(slot, now));
    }
    return horizon;
  }
  for (int slot : order_) {
    if (ready_at[slot] > now) {
      return 0;  // Unsteady (frozen or mid-warmup): stay on the fine grid.
    }
    min_boundary = std::min(min_boundary, next_boundary[slot]);
  }
  // Earliest forced materialization: the first job boundary (so the span's
  // last tick crosses it exactly as a fine run would), capped by the next
  // quantum — unless the policy is quantum-passive, in which case the
  // periodic is not even scheduled — and the next time-series sample
  // instant.
  SimTime horizon = quantum_passive_ ? kHorizonNever : GridCeil(NextQuantumAfter(now));
  if (min_boundary < kHorizonNever) {
    horizon = std::min(horizon, GridCeil(min_boundary));
  }
  if (timeseries_ != nullptr) {
    horizon = std::min(horizon, GridCeil(next_ts_sample_));
  }
  return horizon;
}

SimTime ResourceManager::MaterialStop(int slot, SimTime now) {
  const std::size_t s = static_cast<std::size_t>(slot);
  RunningJob& rj = slots_[s];
  const std::uint64_t epoch = hot_.change_epoch[s];
  if (rj.material_epoch == epoch && rj.material_stop > now) {
    return rj.material_stop;
  }
  const SimTime next_b = hot_.next_boundary[s];
  SimTime stop = kHorizonNever;
  if (next_b < kHorizonNever) {
    const Application& app = rj.binding->app();
    const SelfAnalyzer& analyzer = rj.binding->analyzer();
    const int remaining = app.remaining_iterations();
    if (!analyzer.baseline_done()) {
      // The analyzer reacts at each boundary while its baseline window can
      // still fill (it force-releases the processor override when done), so
      // those boundaries are material — unless the window can never fill at
      // the current steady allocation (a mismatched rigid job): its records
      // are discarded without side effects and only completion matters.
      const bool can_engage =
          app.EffectiveProcs() == std::min(analyzer.baseline_procs(), app.allocated());
      stop = can_engage ? GridCeil(next_b)
                        : GridCeil(app.BoundaryTimeAhead(remaining, now));
    } else {
      // Settled: reports accumulate at boundaries but the passive policy
      // ignores them, so the only material instants left are the penultimate
      // drain tick — the largest grid instant that any pre-final boundary
      // rounds up to, where the reference schedule has drained every report
      // it will ever drain for this job — and the completion tick, where
      // reports from boundaries sharing that grid instant are dropped
      // (CheckCompletions frees the slot before DrainReports runs).
      const SimTime fin = GridCeil(app.BoundaryTimeAhead(remaining, now));
      stop = fin;
      // Bounded descending walk for the largest boundary with an earlier
      // grid tick; a pathological pile-up of boundaries on the final tick
      // falls back to per-boundary stops (slower, identically scheduled).
      constexpr int kWalkCap = 64;
      int steps = 0;
      for (int k = remaining - 1; k >= 1; --k) {
        if (++steps > kWalkCap) {
          stop = GridCeil(next_b);
          break;
        }
        const SimTime g = GridCeil(app.BoundaryTimeAhead(k, now));
        if (g < fin) {
          if (g > now) {
            stop = g;
          }
          break;
        }
      }
    }
  }
  rj.material_stop = stop;
  rj.material_epoch = epoch;
  return stop;
}

void ResourceManager::ScheduleNextTick(SimTime now) {
  SimTime next = now + params_.tick;
  if (elide_) {
    const SimTime horizon = ElisionHorizon(now);
    if (horizon >= kHorizonNever) {
      // Unbounded horizon (idle machine, quantum-passive policy, no
      // sampling): nothing can materialize state until an external event —
      // a job start or a quantum plan — pulls the tick back via
      // ScheduleTickAt. Park it unscheduled rather than enqueueing a
      // far-future sentinel the end-of-run drain would dispatch.
      if (tick_pending_) {
        sim_->events().Cancel(tick_event_);
        tick_pending_ = false;
      }
      return;
    }
    if (horizon > next) {
      ticks_elided_->Increment((horizon - next) / params_.tick);
      next = horizon;
    }
  }
  ScheduleTickAt(next);
}

void ResourceManager::OnTick(SimTime now) {
  ProfScope prof_scope(profiler_, SpanId::kRmTick);
  ticks_fired_->Increment();
  const SimDuration dt = now - advanced_to_;

  if (policy_->is_time_sharing()) {
    std::vector<CpuHandoff> handoffs;
    const std::map<JobId, TimeShare> shares = [&] {
      ProfScope decide_scope(profiler_, SpanId::kPolicyDecide);
      return policy_->TimeShareTick(machine_, FillContext(now), dt, &handoffs);
    }();
    if (trace_ != nullptr) {
      trace_->OnHandoffs(advanced_to_, handoffs);
    }
    for (const auto& [job, share] : shares) {
      const int slot = SlotOf(job);
      if (slot >= 0) {
        const std::size_t s = static_cast<std::size_t>(slot);
        slots_[s].binding->app().AdvanceTimeShared(advanced_to_, dt, share.effective_procs,
                                                   share.overhead);
        hot_.alloc_integral_us[s] += share.effective_procs * static_cast<double>(dt);
      }
    }
    advanced_to_ = now;
  } else {
    AdvanceSpan(advanced_to_, dt);
    advanced_to_ = now;
  }

  CheckCompletions(now);
  DrainReports(now);
  if (trace_ != nullptr) {
    trace_->Tick(now);
  }
  // Sample on the scheduler quantum, after completions and reports of this
  // tick have settled, so windows end on post-decision state.
  if (now >= next_ts_sample_) {
    SampleTimeseries(now);
    while (next_ts_sample_ <= now) {
      next_ts_sample_ += params_.quantum;
    }
  }
  if (on_state_change_) {
    on_state_change_(now);
  }
  ScheduleNextTick(now);
}

void ResourceManager::OnQuantum(SimTime now) {
  ProfScope prof_scope(profiler_, SpanId::kRmQuantum);
  if (policy_->is_time_sharing()) {
    return;
  }
  const AllocationPlan plan = [&] {
    ProfScope decide_scope(profiler_, SpanId::kPolicyDecide);
    return policy_->OnQuantum(FillContext(now));
  }();
  if (plan.empty()) {
    return;
  }
  // Mid-span mutation: materialize the elided prefix first, then pull the
  // parked tick back to the fine grid (allocations just changed, so the old
  // horizon is void and the jobs are unsteady anyway).
  CatchUp(now);
  ApplyPlan(plan, now, "quantum");
  ScheduleTickAt(advanced_to_ + params_.tick);
}

}  // namespace pdpa
