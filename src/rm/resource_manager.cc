#include "src/rm/resource_manager.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/common/strings.h"

namespace pdpa {

ResourceManager::ResourceManager(Params params, std::unique_ptr<SchedulingPolicy> policy,
                                 Simulation* sim, TraceRecorder* trace, Rng rng)
    : params_(params),
      policy_(std::move(policy)),
      sim_(sim),
      trace_(trace),
      rng_(rng),
      machine_(params.num_cpus) {
  PDPA_CHECK(policy_ != nullptr);
  PDPA_CHECK(sim_ != nullptr);
  PDPA_CHECK_GT(params.tick, 0);
  PDPA_CHECK_GE(params.quantum, params.tick);
  // The whole stack of one run shares the simulation's registry; rebinding
  // the policy here is what isolates concurrent sweep cells from each other.
  registry_ = &sim_->registry();
  policy_->set_registry(registry_);
  jobs_started_ = registry_->counter("rm.jobs_started");
  jobs_finished_ = registry_->counter("rm.jobs_finished");
  reallocations_ = registry_->counter("rm.reallocations");
  plans_applied_ = registry_->counter("rm.plans_applied");
  cpu_handoffs_ = registry_->counter("rm.cpu_handoffs");
  cpu_migrations_ = registry_->counter("rm.cpu_migrations");
  perf_reports_ = registry_->counter("rm.perf_reports");
  free_cpus_gauge_ = registry_->gauge("machine.free_cpus");
  report_efficiency_ = registry_->histogram("rm.report_efficiency",
                                            {0.2, 0.4, 0.6, 0.7, 0.8, 0.9, 1.0, 1.2});
}

void ResourceManager::Start() {
  PDPA_CHECK_EQ(tick_task_, -1);
  next_ts_sample_ = sim_->now() + params_.quantum;
  tick_task_ = sim_->SchedulePeriodic(sim_->now() + params_.tick, params_.tick,
                                      [this](SimTime now) { OnTick(now); });
  quantum_task_ = sim_->SchedulePeriodic(sim_->now() + params_.quantum, params_.quantum,
                                         [this](SimTime now) { OnQuantum(now); });
}

void ResourceManager::Stop() {
  if (tick_task_ >= 0) {
    sim_->StopPeriodic(tick_task_);
    tick_task_ = -1;
  }
  if (quantum_task_ >= 0) {
    sim_->StopPeriodic(quantum_task_);
    quantum_task_ = -1;
  }
  // Flush the tail windows of jobs still running (incomplete runs), so the
  // time-series integral matches alloc_integral_us() even on cutoffs.
  if (timeseries_ != nullptr) {
    const SimTime now = sim_->now();
    for (JobId job : arrival_order_) {
      const auto it = jobs_.find(job);
      if (it != jobs_.end()) {
        FlushAppSample(job, it->second, now);
      }
    }
  }
}

PolicyContext ResourceManager::BuildContext(SimTime now) const {
  PolicyContext ctx;
  ctx.total_cpus = machine_.num_cpus();
  ctx.free_cpus = machine_.FreeCpus();
  ctx.now = now;
  ctx.jobs.reserve(jobs_.size());
  for (JobId job : arrival_order_) {
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) {
      continue;
    }
    PolicyJobInfo info;
    info.id = job;
    info.request = it->second.request;
    info.alloc = it->second.binding->app().allocated();
    info.arrival = it->second.arrival;
    info.rigid = it->second.rigid;
    ctx.jobs.push_back(info);
  }
  return ctx;
}

bool ResourceManager::CanStartJob() const {
  return policy_->ShouldAdmit(BuildContext(sim_->now()));
}

void ResourceManager::StartJob(JobId job, const AppProfile& profile, int request, SimTime now,
                               bool rigid) {
  PDPA_CHECK(!jobs_.contains(job));
  const int effective_request = request > 0 ? request : profile.default_request;
  PDPA_CHECK_GT(effective_request, 0);

  auto app = std::make_unique<Application>(job, profile, params_.app_costs);
  app->set_request(effective_request);
  app->set_rigid(rigid);
  auto binding = std::make_unique<NthLibBinding>(std::move(app), params_.analyzer, rng_.Fork(),
                                                 registry_);
  binding->set_report_callback(
      [this](const PerfReport& report) { pending_reports_.push_back(report); });

  RunningJob running;
  running.binding = std::move(binding);
  running.arrival = now;
  running.request = effective_request;
  running.rigid = rigid;
  running.last_sample = now;
  jobs_[job] = std::move(running);
  arrival_order_.push_back(job);
  jobs_started_->Increment();

  if (policy_->is_time_sharing()) {
    // Time sharing: the runtime spawns `request` threads and the OS
    // schedules them; no partition, no SelfAnalyzer coordination.
    NthLibBinding& b = *jobs_[job].binding;
    b.app().SetAllocation(effective_request, now);
    b.app().Start(now);
    (void)policy_->OnJobStart(BuildContext(now), job);
    PDPA_LOG(Info) << "job " << job << " started (time-sharing, " << effective_request
                   << " threads)";
    return;
  }

  const AllocationPlan plan = policy_->OnJobStart(BuildContext(now), job);
  ApplyPlan(plan, now, "start");
  NthLibBinding& b = *jobs_[job].binding;
  PDPA_CHECK_GT(b.app().allocated(), 0)
      << policy_->name() << " started job " << job << " without processors";
  PDPA_LOG(Info) << "job " << job << " started with " << b.app().allocated() << "/"
                 << effective_request << " cpus";
  if (rigid) {
    // Rigid jobs are not iterative/malleable from the SelfAnalyzer's point
    // of view (Sec. 3.1: "requires applications to be iterative and
    // malleable"); they run without the baseline protocol.
    b.StartJobWithoutAnalyzer(now);
  } else {
    b.StartJob(now);
  }
}

int ResourceManager::AllocationOf(JobId job) const {
  const auto it = jobs_.find(job);
  return it == jobs_.end() ? 0 : it->second.binding->app().allocated();
}

void ResourceManager::ApplyPlan(const AllocationPlan& plan, SimTime now, const char* trigger) {
  if (plan.empty()) {
    return;
  }
  // Merge the plan over current allocations, clamping to [1, request] for
  // running (started) jobs; a plan may include the not-yet-started newcomer
  // whose current allocation is 0.
  std::map<JobId, int> target;
  for (const auto& [job, running] : jobs_) {
    target[job] = running.binding->app().allocated();
  }
  std::string plan_text;
  for (const auto& [job, count] : plan) {
    const auto it = jobs_.find(job);
    if (it == jobs_.end()) {
      continue;  // Finished in the meantime.
    }
    target[job] = std::clamp(count, 1, it->second.request);
    if (events_ != nullptr) {
      if (!plan_text.empty()) {
        plan_text.push_back(' ');
      }
      plan_text += StrFormat("%d:%d", job, target[job]);
    }
  }
  plans_applied_->Increment();
  if (events_ != nullptr && !plan_text.empty()) {
    events_->AllocDecision(now, trigger, plan_text);
  }
  const std::vector<CpuHandoff> handoffs = machine_.ApplyAllocation(target);
  if (trace_ != nullptr) {
    trace_->OnHandoffs(now, handoffs);
  }
  if (!handoffs.empty()) {
    int migrations = 0;
    for (const CpuHandoff& handoff : handoffs) {
      if (handoff.from != kIdleJob && handoff.to != kIdleJob) {
        ++migrations;
      }
    }
    cpu_handoffs_->Increment(static_cast<long long>(handoffs.size()));
    cpu_migrations_->Increment(migrations);
    if (events_ != nullptr) {
      events_->CpuHandoffs(now, static_cast<int>(handoffs.size()), migrations);
    }
  }
  for (const auto& [job, count] : target) {
    NthLibBinding& binding = *jobs_[job].binding;
    if (binding.app().allocated() != count) {
      // Initial assignment (from zero) is not a reallocation.
      if (binding.app().allocated() > 0) {
        ++total_reallocations_;
        reallocations_->Increment();
      }
      binding.SetProcessors(count, now);
    }
  }
}

void ResourceManager::DrainReports(SimTime now) {
  // Reports generated while advancing applications are processed after the
  // tick completes, mirroring the asynchronous shared-memory communication
  // between NthLib and the RM in the real system.
  while (!pending_reports_.empty()) {
    std::vector<PerfReport> batch;
    batch.swap(pending_reports_);
    for (const PerfReport& report : batch) {
      const auto it = jobs_.find(report.job);
      if (it == jobs_.end()) {
        continue;
      }
      it->second.last_speedup = report.speedup;
      it->second.last_efficiency = report.efficiency;
      perf_reports_->Increment();
      report_efficiency_->Observe(report.efficiency);
      if (events_ != nullptr) {
        events_->PerfSample(now, report.job, report.procs, report.speedup, report.efficiency);
      }
      const AllocationPlan plan = policy_->OnReport(BuildContext(now), report);
      ApplyPlan(plan, now, "report");
    }
  }
}

void ResourceManager::FlushAppSample(JobId job, RunningJob& running, SimTime now) {
  if (timeseries_ == nullptr) {
    return;
  }
  const auto it = alloc_integral_us_.find(job);
  const double integral = it == alloc_integral_us_.end() ? 0.0 : it->second;
  const double delta = integral - running.sampled_integral_us;
  // Windows must have positive width for the alloc column to integrate back
  // to the delta; clamp the degenerate zero-width case (job finished at the
  // exact instant of the previous sample) to one microsecond.
  const SimTime t_end = now > running.last_sample ? now : running.last_sample + 1;
  if (delta <= 0.0 && now <= running.last_sample) {
    return;  // Nothing accrued and no time elapsed.
  }
  TimeSeriesSampler::AppPoint point;
  point.t_start = running.last_sample;
  point.t_end = t_end;
  point.job = job;
  point.alloc = delta / static_cast<double>(t_end - running.last_sample);
  point.speedup = running.last_speedup;
  point.efficiency = running.last_efficiency;
  point.state = policy_->AppStateName(job);
  timeseries_->AddApp(std::move(point));
  running.sampled_integral_us = integral;
  running.last_sample = t_end;
}

void ResourceManager::SampleTimeseries(SimTime now) {
  const int free = machine_.FreeCpus();
  free_cpus_gauge_->Set(free);
  if (timeseries_ == nullptr) {
    return;
  }
  for (JobId job : arrival_order_) {
    const auto it = jobs_.find(job);
    if (it != jobs_.end()) {
      FlushAppSample(job, it->second, now);
    }
  }
  TimeSeriesSampler::MachinePoint point;
  point.t = now;
  point.free_cpus = free;
  point.running = static_cast<int>(jobs_.size());
  point.queued = queue_depth_ ? queue_depth_() : 0;
  point.utilization = machine_.num_cpus() > 0
                          ? static_cast<double>(machine_.num_cpus() - free) /
                                static_cast<double>(machine_.num_cpus())
                          : 0.0;
  timeseries_->AddMachine(point);
}

void ResourceManager::CheckCompletions(SimTime now) {
  bool finished_any = false;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (!it->second.binding->app().finished()) {
      ++it;
      continue;
    }
    const JobId job = it->first;
    const SimTime finish_time = it->second.binding->app().finish_time();
    // Final partial window, so per-job time-series integrals are exact.
    FlushAppSample(job, it->second, finish_time);
    const std::vector<CpuHandoff> handoffs = machine_.ReleaseJob(job);
    if (trace_ != nullptr) {
      trace_->OnHandoffs(now, handoffs);
    }
    cpu_handoffs_->Increment(static_cast<long long>(handoffs.size()));
    jobs_finished_->Increment();
    PDPA_LOG(Info) << "job " << job << " finished";
    it = jobs_.erase(it);
    arrival_order_.erase(std::remove(arrival_order_.begin(), arrival_order_.end(), job),
                         arrival_order_.end());
    const AllocationPlan plan = policy_->OnJobFinish(BuildContext(now), job);
    ApplyPlan(plan, now, "finish");
    if (on_finish_) {
      on_finish_(job, finish_time);
    }
    finished_any = true;
  }
  if (finished_any && on_state_change_) {
    on_state_change_(now);
  }
}

void ResourceManager::OnTick(SimTime now) {
  const SimDuration dt = params_.tick;
  const SimTime tick_start = now - dt;

  if (policy_->is_time_sharing()) {
    std::vector<CpuHandoff> handoffs;
    const std::map<JobId, TimeShare> shares =
        policy_->TimeShareTick(machine_, BuildContext(now), dt, &handoffs);
    if (trace_ != nullptr) {
      trace_->OnHandoffs(tick_start, handoffs);
    }
    for (const auto& [job, share] : shares) {
      const auto it = jobs_.find(job);
      if (it != jobs_.end()) {
        it->second.binding->app().AdvanceTimeShared(tick_start, dt, share.effective_procs,
                                                    share.overhead);
        alloc_integral_us_[job] += share.effective_procs * static_cast<double>(dt);
      }
    }
  } else {
    for (JobId job : arrival_order_) {
      const auto it = jobs_.find(job);
      if (it == jobs_.end()) {
        continue;
      }
      it->second.binding->Tick(tick_start, dt);
      alloc_integral_us_[job] +=
          static_cast<double>(it->second.binding->app().allocated()) * static_cast<double>(dt);
    }
  }

  CheckCompletions(now);
  DrainReports(now);
  if (trace_ != nullptr) {
    trace_->Tick(now);
  }
  // Sample on the scheduler quantum, after completions and reports of this
  // tick have settled, so windows end on post-decision state.
  if (now >= next_ts_sample_) {
    SampleTimeseries(now);
    while (next_ts_sample_ <= now) {
      next_ts_sample_ += params_.quantum;
    }
  }
  if (on_state_change_) {
    on_state_change_(now);
  }
}

void ResourceManager::OnQuantum(SimTime now) {
  if (policy_->is_time_sharing()) {
    return;
  }
  const AllocationPlan plan = policy_->OnQuantum(BuildContext(now));
  ApplyPlan(plan, now, "quantum");
}

}  // namespace pdpa
