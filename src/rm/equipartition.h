// Equipartition (McCann, Vaswani, Zahorjan): divide the machine equally
// among running jobs, capped by each job's request; redistribute only at job
// arrival and completion.
#ifndef SRC_RM_EQUIPARTITION_H_
#define SRC_RM_EQUIPARTITION_H_

#include "src/rm/policy.h"

namespace pdpa {

class Equipartition : public SchedulingPolicy {
 public:
  // `fixed_ml` is the multiprogramming level enforced for this policy.
  explicit Equipartition(int fixed_ml = 4);

  std::string name() const override { return "Equipartition"; }

  AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) override;
  AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) override;
  bool ShouldAdmit(const PolicyContext& ctx) const override;
  // Reallocates only at job arrival and completion.
  bool quantum_passive() const override { return true; }
  // Ignores performance reports entirely (OnReport is the base no-op and
  // ShouldAdmit counts jobs): safe for boundary batching.
  bool report_passive() const override { return true; }

  // Water-filling equal split capped by requests; exposed for tests.
  static AllocationPlan EqualSplit(const PolicyContext& ctx);

 protected:
  void BindInstruments(Registry& registry) override;

 private:
  int fixed_ml_;
  Counter* rebalances_ = nullptr;
};

}  // namespace pdpa

#endif  // SRC_RM_EQUIPARTITION_H_
