#include "src/rm/equipartition.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/counters.h"

namespace pdpa {

Equipartition::Equipartition(int fixed_ml) : fixed_ml_(fixed_ml) {
  PDPA_CHECK_GE(fixed_ml, 1);
  BindInstruments(Registry::Default());
}

void Equipartition::BindInstruments(Registry& registry) {
  rebalances_ = registry.counter("policy.equip.rebalances");
}

AllocationPlan Equipartition::EqualSplit(const PolicyContext& ctx) {
  AllocationPlan plan;
  if (ctx.jobs.empty()) {
    return plan;
  }
  // Start everyone at zero, then hand out processors one by one to the job
  // with the smallest current share that is still below its request. This
  // is the classic water-filling formulation: equal shares, with small
  // requests capped and their leftovers redistributed.
  for (const PolicyJobInfo& job : ctx.jobs) {
    plan[job.id] = 0;
  }
  int remaining = ctx.total_cpus;
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (const PolicyJobInfo& job : ctx.jobs) {
      if (remaining == 0) {
        break;
      }
      if (plan[job.id] < job.request) {
        ++plan[job.id];
        --remaining;
        progress = true;
      }
    }
  }
  return plan;
}

AllocationPlan Equipartition::OnJobStart(const PolicyContext& ctx, JobId job) {
  (void)job;
  if (!ctx.jobs.empty()) {
    rebalances_->Increment();
  }
  return EqualSplit(ctx);
}

AllocationPlan Equipartition::OnJobFinish(const PolicyContext& ctx, JobId job) {
  (void)job;
  if (!ctx.jobs.empty()) {
    rebalances_->Increment();
  }
  return EqualSplit(ctx);
}

bool Equipartition::ShouldAdmit(const PolicyContext& ctx) const {
  return static_cast<int>(ctx.jobs.size()) < fixed_ml_;
}

}  // namespace pdpa
