// "Dynamic" processor allocation (McCann, Vaswani, Zahorjan, TOCS 1993),
// the related-work policy the paper contrasts PDPA against: processors move
// eagerly toward applications that can use them, based on each
// application's reported idleness, with reallocation at every report and
// quantum. Faithful to the property the paper highlights: it "results in a
// large number of reallocations".
//
// Model: an application's *useful parallelism* is estimated from its last
// measured efficiency (useful ~ alloc * eff, plus one processor of probing
// headroom). Each quantum the machine is redistributed equally, capped by
// per-application useful parallelism — so processors idle at one
// application flow immediately to the others.
#ifndef SRC_RM_MCCANN_DYNAMIC_H_
#define SRC_RM_MCCANN_DYNAMIC_H_

#include <map>

#include "src/rm/policy.h"

namespace pdpa {

class McCannDynamic : public SchedulingPolicy {
 public:
  struct Params {
    int fixed_ml = 4;
    // Probing headroom above the estimated useful parallelism.
    int probe = 1;
  };

  McCannDynamic();
  explicit McCannDynamic(Params params);

  std::string name() const override { return "Dynamic"; }

  AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) override;
  AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) override;
  AllocationPlan OnReport(const PolicyContext& ctx, const PerfReport& report) override;
  AllocationPlan OnQuantum(const PolicyContext& ctx) override;
  bool ShouldAdmit(const PolicyContext& ctx) const override;

 protected:
  void BindInstruments(Registry& registry) override;

 private:
  AllocationPlan Redistribute(const PolicyContext& ctx) const;

  Params params_;
  // Last estimated useful parallelism per job.
  std::map<JobId, int> useful_;
  Counter* redistributions_ = nullptr;
};

}  // namespace pdpa

#endif  // SRC_RM_MCCANN_DYNAMIC_H_
