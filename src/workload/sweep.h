// Parallel sweep engine: runs a grid of experiments (workloads x loads x
// policies x seeds) across a pool of worker threads.
//
// Each grid cell executes one RunExperiment with a *private* observability
// context — its own Registry, EventLog sink and TimeSeriesSampler — so N
// simulations can run concurrently without sharing any mutable state. Cells
// are handed to workers through a mutex-guarded cursor (one claim per whole
// simulation, so contention is noise; the lock keeps the queue visible to
// clang's thread-safety analysis) and every result is stored at the cell's
// grid index, so output order is the deterministic grid order regardless of
// completion order: a parallel sweep produces byte-identical CSV and
// per-cell recordings to a serial one.
//
// The seeds axis is the replication dimension: the same (workload, load,
// policy) cell re-run under different arrival-trace seeds. SweepCsv emits
// one row per (replica, class) plus per-class mean/p50/p95 aggregate rows
// across the replicas whenever more than one seed is swept.
#ifndef SRC_WORKLOAD_SWEEP_H_
#define SRC_WORKLOAD_SWEEP_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/obs/prof.h"
#include "src/obs/slowdown.h"
#include "src/workload/experiment.h"

namespace pdpa {

// The sweep axes plus the template config shared by every cell. The
// template's workload/load/policy/seed are overwritten per cell; its
// event_log/timeseries/registry pointers must be null (RunSweep installs
// per-cell sinks itself).
struct SweepGrid {
  ExperimentConfig base;
  std::vector<WorkloadId> workloads = {WorkloadId::kW1};
  std::vector<double> loads = {1.0};
  std::vector<PolicyKind> policies = {PolicyKind::kPdpa};
  std::vector<std::uint64_t> seeds = {42};
  // Cluster dimensions (src/workload/cluster_cell.h). nodes == 1 is the
  // classic single-SMP sweep and ignores placements; nodes > 1 runs every
  // cell on a cluster of `nodes` x `cpus_per_node` (overriding
  // base.num_cpus with their product) and sweeps the placements axis.
  int nodes = 1;
  int cpus_per_node = 60;
  std::vector<PlacementPolicy> placements = {PlacementPolicy::kRoundRobin};
  // Per-cell shard count for the cluster engine (wall-clock only; outputs
  // are shard-count-invariant).
  int cluster_shards = 1;
  // Epoch-batched arrival handling in the cluster engine (cluster.h);
  // false restores the one-arrival-per-barrier reference protocol.
  bool arrival_batch = true;
};

// One fully resolved grid cell.
struct SweepCell {
  std::size_t index = 0;
  WorkloadId workload = WorkloadId::kW1;
  double load = 1.0;
  PolicyKind policy = PolicyKind::kPdpa;
  std::uint64_t seed = 42;
  // "w1_0.60_PDPA", with a "_<placement>" suffix (e.g. "_rr") when the
  // grid is a cluster sweep and an "_s<seed>" suffix when the grid sweeps
  // more than one seed. Used for per-cell recording filenames.
  std::string name;
  ExperimentConfig config;
  // Copied from the grid; nodes == 1 means a single-SMP cell.
  int nodes = 1;
  int cpus_per_node = 60;
  int cluster_shards = 1;
  bool arrival_batch = true;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
};

// Expands the grid in nested order: workload (outer) x load x policy x
// placement x seed (inner); a single-SMP grid has exactly one placement, so
// the classic workload x load x policy x seed order is unchanged. Cell
// indices are positions in this order.
std::vector<SweepCell> ExpandGrid(const SweepGrid& grid);

// Completion progress of a running sweep, delivered to
// SweepOptions::on_progress as cells finish (completion order, which under
// a parallel sweep is not grid order).
struct SweepProgress {
  // Cells fully executed so far, including the one just finished.
  std::size_t done = 0;
  std::size_t total = 0;
  // Grid index of the cell that just finished.
  std::size_t cell_index = 0;
};

// What the shared-prefix fork machinery actually did during one RunSweep,
// for reporting and non-vacuity tests. A fork saves work whenever
// forked_cells exceeds prefixes_built: those cells skipped the pre-arrival
// simulation entirely.
struct ForkStats {
  // (workload, load, seed) groups in the grid.
  std::size_t groups = 0;
  // Groups whose shared prefix was actually run and snapshotted.
  std::size_t prefixes_built = 0;
  // Cells started from a group snapshot vs. run cold from t=0.
  std::size_t forked_cells = 0;
  std::size_t cold_cells = 0;
};

struct SweepOptions {
  // Worker threads. <= 0 means std::thread::hardware_concurrency(); the
  // value is clamped to [1, number of cells]. jobs == 1 runs inline on the
  // calling thread (no pool).
  int jobs = 0;
  // Capture a Registry snapshot / JSONL event log / time-series CSV per
  // cell. Off by default: capturing events in particular costs string
  // building on the simulation hot path.
  bool capture_counters = false;
  bool capture_events = false;
  bool capture_timeseries = false;
  // Capture a host-time profile per cell (span hit counts + nanosecond
  // totals) plus the cell's host begin/end stamps and worker index. Hit
  // counts are deterministic (serial == parallel, run to run); only the
  // nanosecond totals vary with the host.
  bool capture_prof = false;
  // Invoked once per completed cell, from whichever thread finished it. The
  // engine holds its progress mutex across the call, so invocations are
  // serialized and need no locking of their own — but must stay quick and
  // must not call back into RunSweep.
  std::function<void(const SweepProgress&)> on_progress;
  // Shared-prefix forking (DESIGN.md §12): run each (workload, load, seed)
  // group's policy-independent prefix once and fork the group's eligible
  // cells from the snapshot. Outputs are byte-identical either way; off is
  // the escape hatch (--no_fork) for bisecting and for exactness audits.
  bool fork = true;
  // When set, receives what the fork machinery did (written after the sweep
  // completes, from the calling thread).
  ForkStats* fork_stats = nullptr;
  // Test-only: capture each cell's events/time-series through the retained
  // pre-fast-path serializers (see DESIGN.md §9) so golden fixtures and
  // benches can compare recordings byte for byte against the fast path.
  bool legacy_serialization_for_test = false;
};

namespace internal {

// Shared worker-pool state of one RunSweep: the work-queue cursor plus the
// completion counter. Exposed in the header only so the lock-discipline
// probe (tests/tsa_probe/) can reference it; not part of the sweep API.
struct SweepWorkState {
  // Outermost rank in the lock hierarchy (DESIGN.md §8): held across the
  // serialized on_progress callback, which may reach ranked locks below.
  Mutex mutex{PDPA_LOCK_RANK(10)};
  // The work queue: cells are claimed in grid order, one per worker
  // round-trip. Equal to the number of cells handed out so far.
  std::size_t next_cell PDPA_GUARDED_BY(mutex) = 0;
  // Cells fully executed (result slot written).
  std::size_t done PDPA_GUARDED_BY(mutex) = 0;
};

}  // namespace internal

struct SweepCellResult {
  SweepCell cell;
  ExperimentResult result;
  // Filled per SweepOptions; empty otherwise.
  RegistrySnapshot counters;
  std::string events_jsonl;
  std::string timeseries_csv;
  // Filled when SweepOptions::capture_prof: the cell's host-time profile,
  // the worker thread that ran it (0 for an inline sweep), and the cell's
  // host-clock begin/end stamps (prof::NowNanos), for trace export.
  Profiler profile;
  int worker = 0;
  long long host_begin_ns = 0;
  long long host_end_ns = 0;
};

// Runs every cell of the grid; returns results in grid (ExpandGrid) order.
std::vector<SweepCellResult> RunSweep(const SweepGrid& grid, const SweepOptions& options = {});

// Merges the per-cell profiles in grid order (deterministic: integer hit
// counts add exactly; nanosecond totals add but stay host-dependent).
Profiler MergeProfiles(const std::vector<SweepCellResult>& results);

// Element-wise mean / median / 95th percentile of one metric across seed
// replicas.
struct AggStat {
  double mean = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
};

// Per-class statistics across the seed replicas of one (workload, load,
// policy) group. `replicas` counts the seeds in which the class appeared.
struct ClassAggregate {
  int replicas = 0;
  AggStat count;
  AggStat avg_response_s;
  AggStat p50_response_s;
  AggStat p95_response_s;
  AggStat avg_exec_s;
  AggStat avg_wait_s;
  AggStat avg_alloc;
  // Exact bucket-count merge of the replicas' slowdown histograms; the
  // aggregate percentiles come from here (independent of merge grouping).
  LogHistogram slowdown;
};

struct CellAggregate {
  std::map<AppClass, ClassAggregate> per_class;
  AggStat makespan_s;
  AggStat max_ml;
  AggStat reallocations;
  bool all_completed = true;
  int replicas = 0;
};

// Aggregates results[begin, begin + count) — the seed replicas of one grid
// group — across seeds.
CellAggregate AggregateSeeds(const std::vector<SweepCellResult>& results, std::size_t begin,
                             std::size_t count);

// Writes the sweep CSV: header, one row per (replica, class) in grid order,
// and, when seeds_per_group > 1, three aggregate rows per class (seed column
// "mean" / "p50" / "p95") after each group's replica rows. `seeds_per_group`
// must divide results.size(). `slowdown_columns` appends slowdown_p50/p95/
// p99 columns (per-replica and merged-across-replicas percentiles); off by
// default so existing pinned outputs stay byte-identical.
void SweepCsv(const std::vector<SweepCellResult>& results, std::size_t seeds_per_group,
              std::ostream& out, bool slowdown_columns = false);

namespace internal {

// The pre-fast-path sweep CSV writer (per-row StrFormat temporaries,
// per-row ostream inserts), kept only so the golden byte-identity fixture
// and serialization_bench can A/B against SweepCsv; production code must
// not use it.
void SweepCsvLegacy(const std::vector<SweepCellResult>& results, std::size_t seeds_per_group,
                    std::ostream& out);

}  // namespace internal

}  // namespace pdpa

#endif  // SRC_WORKLOAD_SWEEP_H_
