#include "src/workload/sweep.h"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <thread>
#include <utility>

#include "src/app/app_profile.h"
#include "src/common/bufwriter.h"
#include "src/common/fmt.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/common/strings.h"
#include "src/obs/counters.h"
#include "src/obs/event_log.h"
#include "src/obs/timeseries.h"
#include "src/workload/cluster_cell.h"

namespace pdpa {

std::vector<SweepCell> ExpandGrid(const SweepGrid& grid) {
  PDPA_CHECK(!grid.workloads.empty());
  PDPA_CHECK(!grid.loads.empty());
  PDPA_CHECK(!grid.policies.empty());
  PDPA_CHECK(!grid.seeds.empty());
  PDPA_CHECK_GE(grid.nodes, 1);
  PDPA_CHECK_GE(grid.cpus_per_node, 1);
  PDPA_CHECK(grid.base.registry == nullptr) << "RunSweep installs per-cell registries";
  PDPA_CHECK(grid.base.event_log == nullptr) << "RunSweep installs per-cell event logs";
  PDPA_CHECK(grid.base.timeseries == nullptr) << "RunSweep installs per-cell samplers";
  const bool cluster = grid.nodes > 1;
  // Single-SMP grids always have exactly one (ignored) placement cell axis,
  // so the classic grid shape and group arithmetic are unchanged.
  std::vector<PlacementPolicy> placements = {PlacementPolicy::kRoundRobin};
  if (cluster) {
    PDPA_CHECK(!grid.placements.empty());
    PDPA_CHECK(!grid.base.record_trace) << "CPU traces are single-node only";
    placements = grid.placements;
  }
  std::vector<SweepCell> cells;
  cells.reserve(grid.workloads.size() * grid.loads.size() * grid.policies.size() *
                placements.size() * grid.seeds.size());
  for (WorkloadId workload : grid.workloads) {
    for (double load : grid.loads) {
      for (PolicyKind policy : grid.policies) {
        for (PlacementPolicy placement : placements) {
          for (std::uint64_t seed : grid.seeds) {
            SweepCell cell;
            cell.index = cells.size();
            cell.workload = workload;
            cell.load = load;
            cell.policy = policy;
            cell.seed = seed;
            cell.name = StrFormat("%s_%.2f_%s", WorkloadShortName(workload), load,
                                  PolicyKindName(policy));
            if (cluster) {
              cell.name += StrFormat("_%s", PlacementPolicyShortName(placement));
            }
            if (grid.seeds.size() > 1) {
              cell.name += StrFormat("_s%llu", static_cast<unsigned long long>(seed));
            }
            cell.config = grid.base;
            cell.config.workload = workload;
            cell.config.load = load;
            cell.config.policy = policy;
            cell.config.seed = seed;
            cell.nodes = grid.nodes;
            cell.cpus_per_node = grid.cpus_per_node;
            cell.cluster_shards = grid.cluster_shards;
            cell.arrival_batch = grid.arrival_batch;
            cell.placement = placement;
            if (cluster) {
              // Arrival rates must scale with the whole cluster's capacity.
              cell.config.num_cpus = grid.nodes * grid.cpus_per_node;
            }
            cells.push_back(std::move(cell));
          }
        }
      }
    }
  }
  return cells;
}

namespace {

// The shared-prefix state of one (workload, load, seed) group (DESIGN.md
// §12). The first of the group's cells to reach RunCell resolves the job
// trace and — when the group is forkable — runs and snapshots the prefix,
// all under the group mutex; the fields are immutable afterwards, and every
// later reader's own acquisition of the mutex publishes them.
struct ForkGroup {
  // Ranked between the sweep cursor (held around neither BuildJobs nor the
  // prefix run) and the Registry lock, which prefix building reaches when
  // it registers and snapshots instruments (DESIGN.md §8).
  Mutex group_mutex{PDPA_LOCK_RANK(20)};
  bool built PDPA_GUARDED_BY(group_mutex) = false;
  // Written once before `built` flips; read-only afterwards (so reads after
  // the mutex round-trip are race-free without holding the lock).
  std::shared_ptr<const std::vector<JobSpec>> jobs;
  PrefixSnapshot snapshot;
  bool forkable = false;
};

// Per-worker scratch reused across that worker's cells: the event sink
// string, the event log (keeping its interned vocabulary and 64 KiB write
// buffer across Reset) and the time-series sampler (keeping its vectors'
// capacity across Clear). Recordings are content-deterministic, so reuse
// cannot change output bytes. The Registry is deliberately NOT reused: a
// recycled registry would carry instruments registered by earlier cells as
// ghost zero-valued entries in the next cell's counter snapshot.
struct CellScratch {
  std::ostringstream events;
  EventLog event_log{nullptr};
  TimeSeriesSampler timeseries;
};

// Runs one cell with its private observability context. `forked` is the
// cell's slot in the sweep-wide fork flags (distinct per cell, so writes
// need no lock).
void RunCell(const SweepCell& cell, const SweepOptions& options, int worker, ForkGroup* group,
             CellScratch* scratch, char* forked, SweepCellResult* out) {
  Registry registry;
  ExperimentConfig config = cell.config;
  config.registry = &registry;
  scratch->events.str(std::string());
  scratch->event_log.Reset(options.capture_events ? &scratch->events : nullptr);
  if (options.capture_events) {
    scratch->event_log.set_legacy_serialization_for_test(options.legacy_serialization_for_test);
    config.event_log = &scratch->event_log;
  }
  scratch->timeseries.Clear();
  if (options.capture_timeseries) {
    config.timeseries = &scratch->timeseries;
  }
  out->cell = cell;
  out->worker = worker;
  if (options.capture_prof) {
    config.profiler = &out->profile;
    out->host_begin_ns = prof::NowNanos();
  }
  if (cell.nodes > 1) {
    // Cluster cell: RunCluster owns its observability sinks, so the scratch
    // wiring above is unused; recordings come back by value. The fork
    // machinery never applies (no shared prefix across per-node timelines)
    // but the group's immutable job trace is still shared.
    {
      ProfScope cell_scope(options.capture_prof ? &out->profile : nullptr, SpanId::kSweepCell);
      config.event_log = nullptr;
      config.timeseries = nullptr;
      ClusterCellConfig cluster;
      cluster.nodes = cell.nodes;
      cluster.cpus_per_node = cell.cpus_per_node;
      cluster.placement = cell.placement;
      cluster.shards = cell.cluster_shards;
      cluster.arrival_batch = cell.arrival_batch;
      cluster.capture_counters = options.capture_counters;
      cluster.capture_events = options.capture_events;
      cluster.capture_timeseries = options.capture_timeseries;
      std::shared_ptr<const std::vector<JobSpec>> jobs;
      if (options.fork) {
        const MutexLock lock(&group->group_mutex);
        if (!group->built) {
          // Trace only; no prefix snapshot (group->forkable stays false).
          group->jobs = BuildJobs(config);
          group->built = true;
        }
        jobs = group->jobs;
      } else {
        jobs = BuildJobs(config);
      }
      ClusterCellOutput cluster_out = RunClusterCell(config, cluster, std::move(jobs));
      out->result = std::move(cluster_out.result);
      out->counters = std::move(cluster_out.counters);
      out->events_jsonl = std::move(cluster_out.events_jsonl);
      out->timeseries_csv = std::move(cluster_out.timeseries_csv);
    }
    if (options.capture_prof) {
      out->host_end_ns = prof::NowNanos();
    }
    return;
  }
  {
    ProfScope cell_scope(options.capture_prof ? &out->profile : nullptr, SpanId::kSweepCell);
    bool fork_this_cell = false;
    if (options.fork) {
      const MutexLock lock(&group->group_mutex);
      if (!group->built) {
        group->jobs = BuildJobs(config);
        if (PrefixForkable(config, *group->jobs)) {
          group->snapshot = BuildPrefixSnapshot(config, group->jobs);
          group->forkable = true;
        }
        group->built = true;
      }
      fork_this_cell = group->forkable && ForkEligible(config, *group->jobs);
    }
    if (fork_this_cell) {
      out->result = RunExperimentFrom(config, group->snapshot);
      *forked = 1;
    } else if (options.fork) {
      // Cold cell of a fork-enabled sweep (ineligible policy or prefix):
      // still reuse the group's immutable job trace instead of rebuilding.
      out->result = RunExperiment(config, group->jobs);
    } else {
      out->result = RunExperiment(config);
    }
  }
  if (options.capture_prof) {
    out->host_end_ns = prof::NowNanos();
  }
  if (options.capture_counters) {
    out->counters = registry.Snapshot();
  }
  if (options.capture_events) {
    scratch->event_log.Flush();  // The log buffers; push bytes out before reading.
    out->events_jsonl = scratch->events.str();
  }
  if (options.capture_timeseries) {
    std::ostringstream csv;
    if (options.legacy_serialization_for_test) {
      internal::WriteTimeSeriesCsvLegacy(scratch->timeseries, csv);
    } else {
      scratch->timeseries.WriteCsv(csv);
    }
    out->timeseries_csv = csv.str();
  }
}

// Marks `cell_index` complete and delivers the progress callback while the
// state mutex is held (callbacks are serialized by contract).
void FinishCell(internal::SweepWorkState* state, const SweepOptions& options, std::size_t total,
                std::size_t cell_index) {
  const MutexLock lock(&state->mutex);
  ++state->done;
  if (options.on_progress) {
    SweepProgress progress;
    progress.done = state->done;
    progress.total = total;
    progress.cell_index = cell_index;
    options.on_progress(progress);
  }
}

}  // namespace

std::vector<SweepCellResult> RunSweep(const SweepGrid& grid, const SweepOptions& options) {
  const std::vector<SweepCell> cells = ExpandGrid(grid);
  std::vector<SweepCellResult> results(cells.size());
  if (options.fork_stats != nullptr) {
    *options.fork_stats = ForkStats{};
  }
  if (cells.empty()) {
    return results;
  }
  // One ForkGroup per (workload, load, seed) combination. The grid's nested
  // order (workload x load x policy x placement x seed) maps a cell to its
  // group by stripping the policy and placement axes out of the index. A
  // single-SMP grid expands with exactly one placement (see ExpandGrid), so
  // num_placements must mirror that rule, not grid.placements.size().
  const std::size_t num_seeds = grid.seeds.size();
  const std::size_t num_placements = grid.nodes > 1 ? grid.placements.size() : 1;
  const std::size_t num_policies = grid.policies.size() * num_placements;
  const std::size_t num_loads = grid.loads.size();
  std::vector<ForkGroup> groups(grid.workloads.size() * num_loads * num_seeds);
  const auto group_of = [num_seeds, num_policies, num_loads](std::size_t index) {
    const std::size_t seed = index % num_seeds;
    const std::size_t load = (index / (num_seeds * num_policies)) % num_loads;
    const std::size_t workload = index / (num_seeds * num_policies * num_loads);
    return (workload * num_loads + load) * num_seeds + seed;
  };
  std::vector<char> forked(cells.size(), 0);
  internal::SweepWorkState state;
  int jobs = options.jobs;
  if (jobs <= 0) {
    jobs = static_cast<int>(std::thread::hardware_concurrency());
  }
  jobs = std::clamp(jobs, 1, static_cast<int>(cells.size()));
  if (jobs == 1) {
    CellScratch scratch;
    for (const SweepCell& cell : cells) {
      RunCell(cell, options, 0, &groups[group_of(cell.index)], &scratch, &forked[cell.index],
              &results[cell.index]);
      FinishCell(&state, options, cells.size(), cell.index);
    }
  } else {
    // The mutex-guarded cursor feeds all workers (one claim per whole
    // simulation, so the lock is noise); each claimed cell writes its result
    // at its own grid index, so result order never depends on scheduling.
    std::vector<std::thread> workers;
    workers.reserve(static_cast<std::size_t>(jobs));
    for (int i = 0; i < jobs; ++i) {
      workers.emplace_back([&cells, &results, &options, &state, &groups, &forked, group_of, i] {
        CellScratch scratch;
        for (;;) {
          std::size_t index = 0;
          {
            const MutexLock lock(&state.mutex);
            if (state.next_cell >= cells.size()) {
              return;
            }
            index = state.next_cell++;
          }
          RunCell(cells[index], options, i, &groups[group_of(index)], &scratch, &forked[index],
                  &results[index]);
          FinishCell(&state, options, cells.size(), index);
        }
      });
    }
    for (std::thread& worker : workers) {
      worker.join();
    }
  }
  if (options.fork_stats != nullptr) {
    // Workers have joined (or the loop ran inline): the groups and flags are
    // quiescent and safe to read from the calling thread.
    ForkStats stats;
    stats.groups = groups.size();
    for (const ForkGroup& group : groups) {
      stats.prefixes_built += group.forkable ? 1 : 0;
    }
    for (const char cell_forked : forked) {
      (cell_forked != 0 ? stats.forked_cells : stats.cold_cells) += 1;
    }
    *options.fork_stats = stats;
  }
  return results;
}

Profiler MergeProfiles(const std::vector<SweepCellResult>& results) {
  Profiler merged;
  for (const SweepCellResult& r : results) {
    merged.Merge(r.profile);
  }
  return merged;
}

namespace {

AggStat Stat(std::vector<double> samples) {
  AggStat stat;
  stat.mean = Mean(samples);
  stat.p50 = Percentile(samples, 50.0);
  stat.p95 = Percentile(std::move(samples), 95.0);
  return stat;
}

}  // namespace

CellAggregate AggregateSeeds(const std::vector<SweepCellResult>& results, std::size_t begin,
                             std::size_t count) {
  PDPA_CHECK_LE(begin + count, results.size());
  CellAggregate aggregate;
  aggregate.replicas = static_cast<int>(count);
  std::vector<double> makespans, max_mls, reallocs;
  std::map<AppClass, std::vector<ClassMetrics>> by_class;
  for (std::size_t i = begin; i < begin + count; ++i) {
    const SweepCellResult& r = results[i];
    makespans.push_back(r.result.metrics.makespan_s);
    max_mls.push_back(r.result.max_ml);
    reallocs.push_back(static_cast<double>(r.result.reallocations));
    aggregate.all_completed = aggregate.all_completed && r.result.completed;
    for (const auto& [app_class, metrics] : r.result.metrics.per_class) {
      by_class[app_class].push_back(metrics);
    }
    for (const auto& [app_class, histogram] : r.result.slowdown) {
      aggregate.per_class[app_class].slowdown.Merge(histogram);
    }
  }
  aggregate.makespan_s = Stat(std::move(makespans));
  aggregate.max_ml = Stat(std::move(max_mls));
  aggregate.reallocations = Stat(std::move(reallocs));
  for (const auto& [app_class, samples] : by_class) {
    ClassAggregate& agg = aggregate.per_class[app_class];
    agg.replicas = static_cast<int>(samples.size());
    const auto column = [&samples](double (*get)(const ClassMetrics&)) {
      std::vector<double> values;
      values.reserve(samples.size());
      for (const ClassMetrics& m : samples) {
        values.push_back(get(m));
      }
      return Stat(std::move(values));
    };
    agg.count = column([](const ClassMetrics& m) { return static_cast<double>(m.count); });
    agg.avg_response_s = column([](const ClassMetrics& m) { return m.avg_response_s; });
    agg.p50_response_s = column([](const ClassMetrics& m) { return m.p50_response_s; });
    agg.p95_response_s = column([](const ClassMetrics& m) { return m.p95_response_s; });
    agg.avg_exec_s = column([](const ClassMetrics& m) { return m.avg_exec_s; });
    agg.avg_wait_s = column([](const ClassMetrics& m) { return m.avg_wait_s; });
    agg.avg_alloc = column([](const ClassMetrics& m) { return m.avg_alloc; });
  }
  return aggregate;
}

namespace {

constexpr char kSweepCsvHeader[] =
    "workload,load,policy,seed,class,jobs,avg_response_s,p50_response_s,p95_response_s,"
    "avg_exec_s,avg_wait_s,avg_cpus,makespan_s,max_ml,reallocations,completed\n";

struct Pick {
  const char* label;
  double (*get)(const AggStat&);
};

constexpr Pick kPicks[] = {
    {"mean", [](const AggStat& s) { return s.mean; }},
    {"p50", [](const AggStat& s) { return s.p50; }},
    {"p95", [](const AggStat& s) { return s.p95; }},
};

void AppendFixed2Cell(std::string* row, double value) {
  AppendFixed(row, value, 2);
  row->push_back(',');
}

// The optional slowdown_p50/p95/p99 cells. Bucket upper bounds carry ~9%
// resolution, so three decimals preserve them without noise digits.
void AppendSlowdownCells(std::string* row, const LogHistogram& histogram) {
  for (const double p : {50.0, 95.0, 99.0}) {
    row->push_back(',');
    AppendFixed(row, histogram.Percentile(p), 3);
  }
}

// `slowdown` null keeps the row byte-identical to the pre-slowdown format.
void AppendReplicaRow(std::string* row, const SweepCellResult& r, AppClass app_class,
                      const ClassMetrics& m, const LogHistogram* slowdown) {
  row->append(WorkloadName(r.cell.workload));
  row->push_back(',');
  AppendFixed2Cell(row, r.cell.load);
  row->append(r.result.policy_name);
  row->push_back(',');
  AppendUint(row, static_cast<unsigned long long>(r.cell.seed));
  row->push_back(',');
  row->append(AppClassName(app_class));
  row->push_back(',');
  AppendInt(row, m.count);
  row->push_back(',');
  AppendFixed2Cell(row, m.avg_response_s);
  AppendFixed2Cell(row, m.p50_response_s);
  AppendFixed2Cell(row, m.p95_response_s);
  AppendFixed2Cell(row, m.avg_exec_s);
  AppendFixed2Cell(row, m.avg_wait_s);
  AppendFixed2Cell(row, m.avg_alloc);
  AppendFixed2Cell(row, r.result.metrics.makespan_s);
  AppendInt(row, r.result.max_ml);
  row->push_back(',');
  AppendInt(row, r.result.reallocations);
  row->push_back(',');
  AppendInt(row, r.result.completed ? 1 : 0);
  if (slowdown != nullptr) {
    AppendSlowdownCells(row, *slowdown);
  }
  row->push_back('\n');
}

void AppendAggregateRow(std::string* row, const SweepCellResult& head,
                        const CellAggregate& aggregate, AppClass app_class,
                        const ClassAggregate& agg, const Pick& pick, bool slowdown_columns) {
  row->append(WorkloadName(head.cell.workload));
  row->push_back(',');
  AppendFixed2Cell(row, head.cell.load);
  row->append(head.result.policy_name);
  row->push_back(',');
  row->append(pick.label);
  row->push_back(',');
  row->append(AppClassName(app_class));
  row->push_back(',');
  AppendFixed2Cell(row, pick.get(agg.count));
  AppendFixed2Cell(row, pick.get(agg.avg_response_s));
  AppendFixed2Cell(row, pick.get(agg.p50_response_s));
  AppendFixed2Cell(row, pick.get(agg.p95_response_s));
  AppendFixed2Cell(row, pick.get(agg.avg_exec_s));
  AppendFixed2Cell(row, pick.get(agg.avg_wait_s));
  AppendFixed2Cell(row, pick.get(agg.avg_alloc));
  AppendFixed2Cell(row, pick.get(aggregate.makespan_s));
  AppendFixed2Cell(row, pick.get(aggregate.max_ml));
  AppendFixed2Cell(row, pick.get(aggregate.reallocations));
  AppendInt(row, aggregate.all_completed ? 1 : 0);
  if (slowdown_columns) {
    // The merged histogram's percentiles are exact regardless of merge
    // grouping, so all three pick rows carry the same distribution values.
    AppendSlowdownCells(row, agg.slowdown);
  }
  row->push_back('\n');
}

}  // namespace

void SweepCsv(const std::vector<SweepCellResult>& results, std::size_t seeds_per_group,
              std::ostream& out, bool slowdown_columns) {
  PDPA_CHECK_GE(seeds_per_group, 1u);
  PDPA_CHECK_EQ(results.size() % seeds_per_group, 0u);
  BufWriter writer(&out);
  if (slowdown_columns) {
    const std::string_view header(kSweepCsvHeader);
    writer.Append(header.substr(0, header.size() - 1));  // drop the newline
    writer.Append(",slowdown_p50,slowdown_p95,slowdown_p99\n");
  } else {
    writer.Append(kSweepCsvHeader);
  }
  std::string row;
  row.reserve(200);
  // Empty stand-in for a class missing from a replica's slowdown map (all
  // its jobs had zero exec time); percentiles read as 0.
  static const LogHistogram kEmptyHistogram;
  for (std::size_t group = 0; group < results.size(); group += seeds_per_group) {
    for (std::size_t i = group; i < group + seeds_per_group; ++i) {
      const SweepCellResult& r = results[i];
      for (const auto& [app_class, m] : r.result.metrics.per_class) {
        row.clear();
        const LogHistogram* slowdown = nullptr;
        if (slowdown_columns) {
          const auto it = r.result.slowdown.find(app_class);
          slowdown = it != r.result.slowdown.end() ? &it->second : &kEmptyHistogram;
        }
        AppendReplicaRow(&row, r, app_class, m, slowdown);
        writer.Append(row);
      }
    }
    if (seeds_per_group <= 1) {
      continue;
    }
    const SweepCellResult& head = results[group];
    const CellAggregate aggregate = AggregateSeeds(results, group, seeds_per_group);
    for (const auto& [app_class, agg] : aggregate.per_class) {
      for (const Pick& pick : kPicks) {
        row.clear();
        AppendAggregateRow(&row, head, aggregate, app_class, agg, pick, slowdown_columns);
        writer.Append(row);
      }
    }
  }
  writer.Flush();
}

namespace internal {

void SweepCsvLegacy(const std::vector<SweepCellResult>& results, std::size_t seeds_per_group,
                    std::ostream& out) {
  PDPA_CHECK_GE(seeds_per_group, 1u);
  PDPA_CHECK_EQ(results.size() % seeds_per_group, 0u);
  out << kSweepCsvHeader;
  for (std::size_t group = 0; group < results.size(); group += seeds_per_group) {
    for (std::size_t i = group; i < group + seeds_per_group; ++i) {
      const SweepCellResult& r = results[i];
      for (const auto& [app_class, m] : r.result.metrics.per_class) {
        out << StrFormat("%s,%.2f,%s,%llu,%s,%d,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%d,%lld,%d\n",
                         WorkloadName(r.cell.workload), r.cell.load,
                         r.result.policy_name.c_str(),
                         static_cast<unsigned long long>(r.cell.seed), AppClassName(app_class),
                         m.count, m.avg_response_s, m.p50_response_s, m.p95_response_s,
                         m.avg_exec_s, m.avg_wait_s, m.avg_alloc, r.result.metrics.makespan_s,
                         r.result.max_ml, r.result.reallocations, r.result.completed ? 1 : 0);
      }
    }
    if (seeds_per_group <= 1) {
      continue;
    }
    const SweepCellResult& head = results[group];
    const CellAggregate aggregate = AggregateSeeds(results, group, seeds_per_group);
    for (const auto& [app_class, agg] : aggregate.per_class) {
      for (const Pick& pick : kPicks) {
        out << StrFormat(
            "%s,%.2f,%s,%s,%s,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%.2f,%d\n",
            WorkloadName(head.cell.workload), head.cell.load, head.result.policy_name.c_str(),
            pick.label, AppClassName(app_class), pick.get(agg.count),
            pick.get(agg.avg_response_s), pick.get(agg.p50_response_s),
            pick.get(agg.p95_response_s), pick.get(agg.avg_exec_s), pick.get(agg.avg_wait_s),
            pick.get(agg.avg_alloc), pick.get(aggregate.makespan_s), pick.get(aggregate.max_ml),
            pick.get(aggregate.reallocations), aggregate.all_completed ? 1 : 0);
      }
    }
  }
}

}  // namespace internal

}  // namespace pdpa
