#include "src/workload/cluster_cell.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/time_types.h"
#include "src/metrics/metrics.h"

namespace pdpa {

ClusterCellOutput RunClusterCell(const ExperimentConfig& config, const ClusterCellConfig& cluster,
                                 std::shared_ptr<const std::vector<JobSpec>> jobs) {
  PDPA_CHECK(jobs != nullptr);
  PDPA_CHECK_GE(cluster.nodes, 1);
  PDPA_CHECK_GE(cluster.cpus_per_node, 1);
  PDPA_CHECK_EQ(config.num_cpus, cluster.nodes * cluster.cpus_per_node)
      << "cluster cell num_cpus must equal nodes * cpus_per_node";
  PDPA_CHECK(!config.record_trace) << "CPU-ownership traces are per-node; not supported "
                                      "in cluster cells";
  PDPA_CHECK(config.event_log == nullptr && config.timeseries == nullptr)
      << "cluster cells own their sinks; use ClusterCellConfig capture flags";

  ClusterOptions options;
  options.num_nodes = cluster.nodes;
  options.cpus_per_node = cluster.cpus_per_node;
  options.placement = cluster.placement;
  options.make_policy = [&config] { return MakePolicy(config); };
  options.rm_params = config.rm;
  options.seed = config.seed;
  options.shards = cluster.shards;
  options.max_sim_time = config.max_sim_time;
  options.arrival_batch = cluster.arrival_batch;
  options.profiler = config.profiler;
  options.capture_events = cluster.capture_events;
  options.capture_timeseries = cluster.capture_timeseries;

  ClusterResult run = RunCluster(*jobs, options);

  ClusterCellOutput out;
  out.result.policy_name =
      MakePolicy(config)->name() + "@" + PlacementPolicyShortName(cluster.placement);
  out.result.completed = run.completed;
  out.result.sim_end_s = TimeToSeconds(run.end_time);
  out.result.metrics = ComputeMetrics(run.outcomes, run.alloc_integral_us);
  out.result.max_ml = run.max_node_running;
  out.result.reallocations = run.total_reallocations;
  // Same observation rule as QueuingSystem::OnJobFinish; bucket counts are
  // insertion-order independent, so the merged completion order is fine.
  for (const JobOutcome& outcome : run.outcomes) {
    const double exec_s = outcome.ExecSeconds();
    if (exec_s > 0.0) {
      out.result.slowdown[outcome.app_class].Observe(outcome.ResponseSeconds() / exec_s);
    }
  }
  out.result.outcomes = std::move(run.outcomes);
  if (cluster.capture_counters) {
    out.counters = std::move(run.counters);
  }
  out.events_jsonl = std::move(run.events_jsonl);
  out.timeseries_csv = std::move(run.timeseries_csv);
  return out;
}

}  // namespace pdpa
