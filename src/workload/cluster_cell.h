// Cluster sweep cells: runs one grid cell on a multi-node cluster
// (src/cluster) instead of a single SMP, translating the cell's
// ExperimentConfig into ClusterOptions and the merged ClusterResult back
// into an ExperimentResult so the sweep CSV, aggregates and recordings
// work unchanged. The policy column reads "<policy>@<placement>", e.g.
// "PDPA@rr", so single-node and cluster rows cannot be confused.
//
// Cluster cells bypass the shared-prefix fork machinery (DESIGN.md §12):
// every node owns a private pre-arrival timeline, so there is no single
// policy-independent prefix to snapshot. They still share the group's
// immutable job trace.
#ifndef SRC_WORKLOAD_CLUSTER_CELL_H_
#define SRC_WORKLOAD_CLUSTER_CELL_H_

#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/obs/counters.h"
#include "src/qs/job.h"
#include "src/workload/experiment.h"

namespace pdpa {

// Everything a cluster cell adds on top of its ExperimentConfig.
struct ClusterCellConfig {
  int nodes = 1;
  int cpus_per_node = 60;
  PlacementPolicy placement = PlacementPolicy::kRoundRobin;
  // Worker event loops for the sharded engine; 1 = serial reference. The
  // output contract (cluster.h) makes this a pure wall-clock knob.
  int shards = 1;
  // Epoch-batched arrival handling (cluster.h); false restores the
  // one-arrival-per-barrier reference protocol (--no_arrival_batch).
  bool arrival_batch = true;
  bool capture_counters = false;
  bool capture_events = false;
  bool capture_timeseries = false;
};

// A cluster cell's recordings come back by value (RunCluster owns its
// sinks), unlike single-node cells which write through borrowed pointers.
struct ClusterCellOutput {
  ExperimentResult result;
  RegistrySnapshot counters;
  std::string events_jsonl;
  std::string timeseries_csv;
};

// Runs `jobs` on the cluster described by (config, cluster). The trace must
// be the one BuildJobs would produce for `config` (whose num_cpus must
// already equal nodes * cpus_per_node, so arrival rates scale with cluster
// capacity). Trace recording is a single-node feature: config.record_trace
// must be unset. config.profiler, when set, profiles the controller thread
// (cluster.barrier_wait / cluster.drain / cluster.place plus the node spans
// reached from the serial inline loop).
ClusterCellOutput RunClusterCell(const ExperimentConfig& config, const ClusterCellConfig& cluster,
                                 std::shared_ptr<const std::vector<JobSpec>> jobs);

}  // namespace pdpa

#endif  // SRC_WORKLOAD_CLUSTER_CELL_H_
