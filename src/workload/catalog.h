// The paper's four workloads (Table 1): per-class shares of the generated
// processor demand.
#ifndef SRC_WORKLOAD_CATALOG_H_
#define SRC_WORKLOAD_CATALOG_H_

#include <array>
#include <vector>

#include "src/qs/job.h"
#include "src/qs/workload_generator.h"

namespace pdpa {

enum class WorkloadId : int {
  kW1 = 1,  // 50% swim, 50% bt
  kW2 = 2,  // 50% bt, 50% hydro2d
  kW3 = 3,  // 50% bt, 50% apsi
  kW4 = 4,  // 25% each
};

const char* WorkloadName(WorkloadId id);

// Short id for filenames and cell names ("w1"), without the descriptive
// suffix that WorkloadName adds ("w1(swim+bt)" would put parentheses in
// paths).
const char* WorkloadShortName(WorkloadId id);

std::array<double, kNumAppClasses> WorkloadShares(WorkloadId id);

// Builds the arrival trace for a workload at the given load. `untuned`
// overrides every request to 30 processors (the paper's "not tuned"
// experiments, Tables 3 and 4).
std::vector<JobSpec> BuildWorkload(WorkloadId id, double load, std::uint64_t seed,
                                   bool untuned = false, int num_cpus = 60);

}  // namespace pdpa

#endif  // SRC_WORKLOAD_CATALOG_H_
