#include "src/workload/catalog.h"

#include "src/common/logging.h"

namespace pdpa {

const char* WorkloadName(WorkloadId id) {
  switch (id) {
    case WorkloadId::kW1:
      return "w1(swim+bt)";
    case WorkloadId::kW2:
      return "w2(bt+hydro2d)";
    case WorkloadId::kW3:
      return "w3(bt+apsi)";
    case WorkloadId::kW4:
      return "w4(all)";
  }
  return "?";
}

const char* WorkloadShortName(WorkloadId id) {
  switch (id) {
    case WorkloadId::kW1:
      return "w1";
    case WorkloadId::kW2:
      return "w2";
    case WorkloadId::kW3:
      return "w3";
    case WorkloadId::kW4:
      return "w4";
  }
  return "w";
}

std::array<double, kNumAppClasses> WorkloadShares(WorkloadId id) {
  // Index order: swim, bt, hydro2d, apsi.
  switch (id) {
    case WorkloadId::kW1:
      return {0.5, 0.5, 0.0, 0.0};
    case WorkloadId::kW2:
      return {0.0, 0.5, 0.5, 0.0};
    case WorkloadId::kW3:
      return {0.0, 0.5, 0.0, 0.5};
    case WorkloadId::kW4:
      return {0.25, 0.25, 0.25, 0.25};
  }
  PDPA_CHECK(false) << "unknown workload";
  return {};
}

std::vector<JobSpec> BuildWorkload(WorkloadId id, double load, std::uint64_t seed, bool untuned,
                                   int num_cpus) {
  WorkloadGenSpec spec;
  spec.load_share = WorkloadShares(id);
  spec.load = load;
  spec.num_cpus = num_cpus;
  spec.request_override = untuned ? 30 : 0;
  spec.seed = seed;
  return GenerateWorkload(spec);
}

}  // namespace pdpa
