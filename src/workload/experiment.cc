#include "src/workload/experiment.h"

#include <utility>

#include "src/common/logging.h"
#include "src/core/pdpa_policy.h"
#include "src/qs/queuing_system.h"
#include "src/rm/equal_efficiency.h"
#include "src/rm/equipartition.h"
#include "src/rm/irix.h"
#include "src/rm/mccann_dynamic.h"
#include "src/sim/simulation.h"
#include <sstream>

#include "src/trace/ascii_view.h"
#include "src/trace/paraver_writer.h"

namespace pdpa {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kIrix:
      return "IRIX";
    case PolicyKind::kEquipartition:
      return "Equip";
    case PolicyKind::kEqualEfficiency:
      return "Equal_eff";
    case PolicyKind::kPdpa:
      return "PDPA";
    case PolicyKind::kMcCannDynamic:
      return "Dynamic";
  }
  return "?";
}

std::unique_ptr<SchedulingPolicy> MakePolicy(const ExperimentConfig& config) {
  switch (config.policy) {
    case PolicyKind::kIrix: {
      IrixTimeShare::Params params;
      params.fixed_ml = config.multiprogramming_level;
      return std::make_unique<IrixTimeShare>(params, Rng(config.seed ^ 0x1217ULL));
    }
    case PolicyKind::kEquipartition:
      return std::make_unique<Equipartition>(config.multiprogramming_level);
    case PolicyKind::kEqualEfficiency: {
      EqualEfficiency::Params params;
      params.fixed_ml = config.multiprogramming_level;
      return std::make_unique<EqualEfficiency>(params);
    }
    case PolicyKind::kPdpa: {
      PdpaMlParams ml;
      ml.default_ml = config.multiprogramming_level;
      ml.coordinated = config.pdpa_coordinated_ml;
      return std::make_unique<PdpaPolicy>(config.pdpa, ml);
    }
    case PolicyKind::kMcCannDynamic: {
      McCannDynamic::Params params;
      params.fixed_ml = config.multiprogramming_level;
      return std::make_unique<McCannDynamic>(params);
    }
  }
  PDPA_CHECK(false) << "unknown policy";
  return nullptr;
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  Simulation sim(config.registry);
  std::unique_ptr<TraceRecorder> trace;
  if (config.record_trace) {
    trace = std::make_unique<TraceRecorder>(config.num_cpus);
  }

  ResourceManager::Params rm_params = config.rm;
  rm_params.num_cpus = config.num_cpus;

  std::unique_ptr<SchedulingPolicy> policy = MakePolicy(config);
  policy->set_event_log(config.event_log);
  ResourceManager rm(rm_params, std::move(policy), &sim, trace.get(),
                     Rng(config.seed ^ 0x5EEDULL));
  rm.set_event_log(config.event_log);
  rm.set_timeseries(config.timeseries);
  rm.set_profiler(config.profiler);
  sim.events().set_profiler(config.profiler);
  if (config.event_log != nullptr) {
    config.event_log->set_profiler(config.profiler);
  }

  std::vector<JobSpec> jobs = config.jobs_override;
  if (jobs.empty()) {
    jobs = BuildWorkload(config.workload, config.load, config.seed, config.untuned,
                         config.num_cpus);
  }
  QueuingSystem::Options qs_options;
  qs_options.order = config.queue_order;
  qs_options.hold_rigid_until_fit = config.hold_rigid_until_fit;
  QueuingSystem qs(&sim, &rm, jobs, qs_options);
  qs.set_event_log(config.event_log);
  rm.set_queue_depth_provider([&qs] { return qs.queued(); });

  if (config.event_log != nullptr) {
    config.event_log->RunStart(rm.policy().name(), WorkloadName(config.workload), config.load,
                               config.seed, config.num_cpus);
  }

  rm.Start();
  qs.Start();

  // Run in one-minute slices until the workload drains or the cutoff hits.
  SimTime horizon = 0;
  while (!qs.AllJobsDone() && sim.now() < config.max_sim_time) {
    horizon += 60 * kSecond;
    sim.RunUntil(horizon);
  }
  rm.Stop();
  if (config.event_log != nullptr) {
    config.event_log->RunEnd(sim.now(), static_cast<int>(jobs.size()), qs.AllJobsDone());
  }

  ExperimentResult result;
  result.policy_name = rm.policy().name();
  result.completed = qs.AllJobsDone();
  result.sim_end_s = TimeToSeconds(sim.now());
  result.metrics = ComputeMetrics(qs.outcomes(), rm.alloc_integral_us());
  result.max_ml = qs.max_ml();
  result.reallocations = rm.total_reallocations();
  result.outcomes = qs.outcomes();
  result.slowdown = qs.slowdown();
  result.ml_timeline_s.reserve(qs.ml_timeline().size());
  for (const auto& [when, ml] : qs.ml_timeline()) {
    result.ml_timeline_s.emplace_back(TimeToSeconds(when), ml);
  }
  if (trace != nullptr) {
    trace->Finalize(sim.now());
    result.trace_stats = trace->ComputeStats();
    result.utilization = result.trace_stats.utilization;
    result.ascii_view = RenderAsciiView(*trace);
    std::ostringstream prv;
    WriteParaverTrace(*trace, static_cast<int>(jobs.size()), prv);
    result.paraver_trace = prv.str();
  }
  return result;
}

}  // namespace pdpa
