#include "src/workload/experiment.h"

#include <algorithm>
#include <utility>

#include "src/common/logging.h"
#include "src/core/pdpa_policy.h"
#include "src/qs/queuing_system.h"
#include "src/rm/equal_efficiency.h"
#include "src/rm/equipartition.h"
#include "src/rm/irix.h"
#include "src/rm/mccann_dynamic.h"
#include "src/sim/simulation.h"
#include <sstream>

#include "src/trace/ascii_view.h"
#include "src/trace/paraver_writer.h"

namespace pdpa {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kIrix:
      return "IRIX";
    case PolicyKind::kEquipartition:
      return "Equip";
    case PolicyKind::kEqualEfficiency:
      return "Equal_eff";
    case PolicyKind::kPdpa:
      return "PDPA";
    case PolicyKind::kMcCannDynamic:
      return "Dynamic";
  }
  return "?";
}

std::unique_ptr<SchedulingPolicy> MakePolicy(const ExperimentConfig& config) {
  switch (config.policy) {
    case PolicyKind::kIrix: {
      IrixTimeShare::Params params;
      params.fixed_ml = config.multiprogramming_level;
      return std::make_unique<IrixTimeShare>(params, Rng(config.seed ^ 0x1217ULL));
    }
    case PolicyKind::kEquipartition:
      return std::make_unique<Equipartition>(config.multiprogramming_level);
    case PolicyKind::kEqualEfficiency: {
      EqualEfficiency::Params params;
      params.fixed_ml = config.multiprogramming_level;
      return std::make_unique<EqualEfficiency>(params);
    }
    case PolicyKind::kPdpa: {
      PdpaMlParams ml;
      ml.default_ml = config.multiprogramming_level;
      ml.coordinated = config.pdpa_coordinated_ml;
      return std::make_unique<PdpaPolicy>(config.pdpa, ml);
    }
    case PolicyKind::kMcCannDynamic: {
      McCannDynamic::Params params;
      params.fixed_ml = config.multiprogramming_level;
      return std::make_unique<McCannDynamic>(params);
    }
  }
  PDPA_CHECK(false) << "unknown policy";
  return nullptr;
}

namespace {

// The policy a shared-prefix run executes under: any job-visible callback
// aborts the process. A snapshot can therefore only exist for a prefix in
// which no policy decision fired — divergence-point detection is correct by
// construction, not by convention (fork_test additionally asserts the
// non-vacuity of that claim via ForkStats).
class PrefixSentinelPolicy final : public SchedulingPolicy {
 public:
  std::string name() const override { return "PrefixSentinel"; }
  // Mirrors the passive policies' elision schedule: the prefix materializes
  // ticks only for time-series samples, exactly as a cold PDPA/Equip run.
  bool quantum_passive() const override { return true; }
  AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) override {
    (void)ctx;
    PDPA_CHECK(false) << "job " << job << " started inside the shared prefix";
    return {};
  }
  AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) override {
    (void)ctx;
    PDPA_CHECK(false) << "job " << job << " finished inside the shared prefix";
    return {};
  }
  AllocationPlan OnReport(const PolicyContext& ctx, const PerfReport& report) override {
    (void)ctx;
    PDPA_CHECK(false) << "performance report for job " << report.job
                      << " inside the shared prefix";
    return {};
  }
  AllocationPlan OnQuantum(const PolicyContext& ctx) override {
    // Reached only under --exact_ticks (elision off disables passivity).
    PDPA_CHECK(ctx.jobs.empty()) << "quantum with running jobs inside the shared prefix";
    return {};
  }
  bool ShouldAdmit(const PolicyContext& ctx) const override {
    (void)ctx;
    PDPA_CHECK(false) << "admission probe inside the shared prefix";
    return false;
  }
};

SimTime FirstArrival(const std::vector<JobSpec>& jobs) {
  PDPA_CHECK(!jobs.empty());
  SimTime first = jobs.front().submit;
  for (const JobSpec& spec : jobs) {
    first = std::min(first, spec.submit);
  }
  return first;
}

// Assembles the policy/RM/QS stack for one run. The pieces live in the
// caller's frame; this only centralizes construction and sink wiring so the
// cold and forked entry points cannot drift apart.
struct Stack {
  Simulation sim;
  ResourceManager rm;
  QueuingSystem qs;

  Stack(const ExperimentConfig& config, TraceRecorder* trace,
        std::shared_ptr<const std::vector<JobSpec>> jobs)
      : sim(config.registry),
        rm(WithCpus(config), MakeWiredPolicy(config), &sim, trace, Rng(config.seed ^ 0x5EEDULL)),
        qs(&sim, &rm, std::move(jobs), QsOptions(config)) {
    rm.set_event_log(config.event_log);
    rm.set_timeseries(config.timeseries);
    rm.set_profiler(config.profiler);
    sim.events().set_profiler(config.profiler);
    if (config.event_log != nullptr) {
      config.event_log->set_profiler(config.profiler);
    }
    qs.set_event_log(config.event_log);
    rm.set_queue_depth_provider([this] { return qs.queued(); });
  }

  static ResourceManager::Params WithCpus(const ExperimentConfig& config) {
    ResourceManager::Params rm_params = config.rm;
    rm_params.num_cpus = config.num_cpus;
    return rm_params;
  }

  static std::unique_ptr<SchedulingPolicy> MakeWiredPolicy(const ExperimentConfig& config) {
    std::unique_ptr<SchedulingPolicy> policy = MakePolicy(config);
    policy->set_event_log(config.event_log);
    return policy;
  }

  static QueuingSystem::Options QsOptions(const ExperimentConfig& config) {
    QueuingSystem::Options qs_options;
    qs_options.order = config.queue_order;
    qs_options.hold_rigid_until_fit = config.hold_rigid_until_fit;
    return qs_options;
  }
};

// Drives a started stack to completion and collects the result — the tail
// shared by the cold and forked entry points.
ExperimentResult DriveAndCollect(const ExperimentConfig& config, Stack& stack,
                                 TraceRecorder* trace, std::size_t num_jobs) {
  // Run in one-minute slices until the workload drains or the cutoff hits.
  SimTime horizon = 0;
  while (!stack.qs.AllJobsDone() && stack.sim.now() < config.max_sim_time) {
    horizon += 60 * kSecond;
    stack.sim.RunUntil(horizon);
  }
  stack.rm.Stop();
  if (config.event_log != nullptr) {
    config.event_log->RunEnd(stack.sim.now(), static_cast<int>(num_jobs),
                             stack.qs.AllJobsDone());
  }

  ExperimentResult result;
  result.policy_name = stack.rm.policy().name();
  result.completed = stack.qs.AllJobsDone();
  result.sim_end_s = TimeToSeconds(stack.sim.now());
  result.metrics = ComputeMetrics(stack.qs.outcomes(), stack.rm.alloc_integral_us());
  result.max_ml = stack.qs.max_ml();
  result.reallocations = stack.rm.total_reallocations();
  result.outcomes = stack.qs.outcomes();
  result.slowdown = stack.qs.slowdown();
  result.ml_timeline_s.reserve(stack.qs.ml_timeline().size());
  for (const auto& [when, ml] : stack.qs.ml_timeline()) {
    result.ml_timeline_s.emplace_back(TimeToSeconds(when), ml);
  }
  if (trace != nullptr) {
    trace->Finalize(stack.sim.now());
    result.trace_stats = trace->ComputeStats();
    result.utilization = result.trace_stats.utilization;
    result.ascii_view = RenderAsciiView(*trace);
    std::ostringstream prv;
    WriteParaverTrace(*trace, static_cast<int>(num_jobs), prv);
    result.paraver_trace = prv.str();
  }
  return result;
}

}  // namespace

std::shared_ptr<const std::vector<JobSpec>> BuildJobs(const ExperimentConfig& config) {
  if (!config.jobs_override.empty()) {
    return std::make_shared<const std::vector<JobSpec>>(config.jobs_override);
  }
  return std::make_shared<const std::vector<JobSpec>>(
      BuildWorkload(config.workload, config.load, config.seed, config.untuned, config.num_cpus));
}

ExperimentResult RunExperiment(const ExperimentConfig& config) {
  return RunExperiment(config, BuildJobs(config));
}

ExperimentResult RunExperiment(const ExperimentConfig& config,
                               std::shared_ptr<const std::vector<JobSpec>> jobs) {
  PDPA_CHECK(jobs != nullptr);
  std::unique_ptr<TraceRecorder> trace;
  if (config.record_trace) {
    trace = std::make_unique<TraceRecorder>(config.num_cpus);
  }

  Stack stack(config, trace.get(), jobs);

  if (config.event_log != nullptr) {
    config.event_log->RunStart(stack.rm.policy().name(), WorkloadName(config.workload),
                               config.load, config.seed, config.num_cpus);
  }

  stack.rm.Start();
  stack.qs.Start();
  return DriveAndCollect(config, stack, trace.get(), jobs->size());
}

bool PrefixForkable(const ExperimentConfig& config, const std::vector<JobSpec>& jobs) {
  if (config.record_trace || jobs.empty()) {
    return false;
  }
  const SimTime first = FirstArrival(jobs);
  // > quantum: the cold run's pending tick and quantum events must have
  // been (re)scheduled after QueuingSystem::Start enqueued the arrivals, so
  // the fork's qs-first start order reproduces same-instant event order.
  return first > config.rm.quantum && first < config.max_sim_time;
}

bool ForkEligible(const ExperimentConfig& config, const std::vector<JobSpec>& jobs) {
  return config.policy != PolicyKind::kIrix && PrefixForkable(config, jobs);
}

PrefixSnapshot BuildPrefixSnapshot(const ExperimentConfig& config,
                                   std::shared_ptr<const std::vector<JobSpec>> jobs) {
  PDPA_CHECK(jobs != nullptr);
  PDPA_CHECK(PrefixForkable(config, *jobs));
  const SimTime first = FirstArrival(*jobs);

  PrefixSnapshot snapshot;
  snapshot.with_timeseries = config.timeseries != nullptr;
  snapshot.jobs = std::move(jobs);

  // A throwaway private stack: sentinel policy, no QS (nothing arrives), no
  // event log (the only prefix record, run_start, is policy-specific and
  // emitted by each forked cell itself), private registry and sampler.
  Registry prefix_registry;
  Simulation sim(&prefix_registry);
  ResourceManager rm(Stack::WithCpus(config), std::make_unique<PrefixSentinelPolicy>(), &sim,
                     nullptr, Rng(config.seed ^ 0x5EEDULL));
  TimeSeriesSampler prefix_ts;
  if (snapshot.with_timeseries) {
    rm.set_timeseries(&prefix_ts);
  }
  rm.Start();
  sim.RunUntil(first - 1);

  // With pre-arrival events pending (a tick at the next sample instant) the
  // clock rests at the last dispatched event, not at first - 1; the forked
  // cells resume from exactly that instant.
  snapshot.divergence = sim.Snapshot();
  snapshot.rm = rm.ResumeStateNow();
  snapshot.registry = prefix_registry.Snapshot();
  snapshot.machine_points = prefix_ts.machine();
  return snapshot;
}

ExperimentResult RunExperimentFrom(const ExperimentConfig& config,
                                   const PrefixSnapshot& snapshot) {
  PDPA_CHECK(snapshot.jobs != nullptr);
  PDPA_CHECK(ForkEligible(config, *snapshot.jobs)) << "RunExperimentFrom on an ineligible config";
  PDPA_CHECK_EQ(snapshot.with_timeseries, config.timeseries != nullptr)
      << "snapshot and cell disagree about time-series capture";

  Stack stack(config, nullptr, snapshot.jobs);

  // Adopt the prefix run's observable state. Restore the registry after the
  // whole stack registered its instruments, so everything absent from the
  // snapshot is zeroed and everything present is overwritten in one pass.
  stack.sim.registry().Restore(snapshot.registry);
  if (config.timeseries != nullptr) {
    for (const TimeSeriesSampler::MachinePoint& point : snapshot.machine_points) {
      config.timeseries->AddMachine(point);
    }
  }
  if (config.event_log != nullptr) {
    config.event_log->RunStart(stack.rm.policy().name(), WorkloadName(config.workload),
                               config.load, config.seed, config.num_cpus);
  }
  stack.sim.Restore(snapshot.divergence);

  // Event-order parity at shared instants: in the cold run, the pending
  // tick/quantum events were (re)scheduled during the prefix — after
  // QueuingSystem::Start had enqueued every arrival — so they sort after
  // same-instant arrivals. Start the QS first to reproduce that order.
  stack.qs.Start();
  stack.rm.StartResumed(snapshot.rm);
  return DriveAndCollect(config, stack, nullptr, snapshot.jobs->size());
}

}  // namespace pdpa
