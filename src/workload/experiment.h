// ExperimentRunner: the facade that assembles one complete NANOS stack
// (machine + RM + QS + runtime bindings + trace) and executes a workload
// under one policy. Every benchmark and the integration tests go through
// this entry point.
#ifndef SRC_WORKLOAD_EXPERIMENT_H_
#define SRC_WORKLOAD_EXPERIMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/pdpa.h"
#include "src/metrics/metrics.h"
#include "src/obs/counters.h"
#include "src/obs/timeseries.h"
#include "src/qs/queuing_system.h"
#include "src/rm/policy.h"
#include "src/rm/resource_manager.h"
#include "src/trace/trace_recorder.h"
#include "src/workload/catalog.h"

namespace pdpa {

enum class PolicyKind : int {
  kIrix = 0,
  kEquipartition = 1,
  kEqualEfficiency = 2,
  kPdpa = 3,
  // Related-work baseline (McCann et al.), not part of the paper's four.
  kMcCannDynamic = 4,
};

const char* PolicyKindName(PolicyKind kind);

struct ExperimentConfig {
  WorkloadId workload = WorkloadId::kW1;
  double load = 1.0;
  PolicyKind policy = PolicyKind::kPdpa;
  std::uint64_t seed = 42;

  int num_cpus = 60;
  // Fixed ML for the baselines; default (initial) ML for PDPA.
  int multiprogramming_level = 4;
  PdpaParams pdpa;
  // Ablation: disable PDPA's coordinated ML rule (fixed ML like baselines).
  bool pdpa_coordinated_ml = true;

  // Overrides every request to 30 CPUs ("not tuned" experiments).
  bool untuned = false;

  // Record the CPU ownership trace (needed for Fig. 5 / Table 2).
  bool record_trace = false;

  ResourceManager::Params rm;

  // Safety cutoff; experiments that have not drained by then are reported
  // with completed = false.
  SimDuration max_sim_time = 6 * 3600 * kSecond;

  // Job-selection order within the queue (extension; the paper uses FCFS).
  QueueOrder queue_order = QueueOrder::kFcfs;
  // Classic rigid regime: rigid jobs wait for their full request instead of
  // starting folded (see QueuingSystem::Options).
  bool hold_rigid_until_fit = false;

  // Use a pre-built job trace instead of generating one (SWF replay). When
  // non-empty, workload/load/seed/untuned are ignored for generation.
  std::vector<JobSpec> jobs_override;

  // Flight-recorder sinks (borrowed, optional). When set, the runner wires
  // them through the QS, RM, and policy for the duration of the experiment.
  EventLog* event_log = nullptr;
  TimeSeriesSampler* timeseries = nullptr;

  // Host-time self-profiler (borrowed, optional). When set, the runner wires
  // it through the event queue, RM, and event log; span hit counts are a
  // deterministic function of the simulated schedule, nanosecond totals are
  // host-dependent. Like the registry, concurrent runs need their own.
  Profiler* profiler = nullptr;

  // Counter/gauge/histogram registry for this run (borrowed, optional).
  // Null falls back to the process-global Registry::Default(). Concurrent
  // RunExperiment calls (the sweep engine) MUST each pass their own registry:
  // it is what isolates their observability state from each other.
  Registry* registry = nullptr;
};

struct ExperimentResult {
  std::string policy_name;
  WorkloadMetrics metrics;
  bool completed = false;
  double sim_end_s = 0.0;

  // Only meaningful when record_trace was set.
  TraceStats trace_stats;
  std::string ascii_view;
  // Paraver (.prv) rendering of the trace, ready to write to a file.
  std::string paraver_trace;

  // Multiprogramming level over time (seconds, running jobs) and its peak.
  std::vector<std::pair<double, int>> ml_timeline_s;
  int max_ml = 0;

  // Machine utilization over the run (owned CPU time / capacity).
  double utilization = 0.0;

  // Allocation changes applied by the RM over the run.
  long long reallocations = 0;

  // Per-job outcomes (submit/start/finish), for observability cross-checks.
  std::vector<JobOutcome> outcomes;

  // Per-class slowdown (response / exec) distributions from the QS. Always
  // populated; integer bucket counts merge exactly across replicas.
  std::map<AppClass, LogHistogram> slowdown;
};

// Builds the policy instance for `config`.
std::unique_ptr<SchedulingPolicy> MakePolicy(const ExperimentConfig& config);

ExperimentResult RunExperiment(const ExperimentConfig& config);

// RunExperiment with a pre-resolved job trace (must equal what BuildJobs
// would produce for `config`). Lets the sweep engine share one immutable
// trace across the cells of a group instead of regenerating it per cell.
ExperimentResult RunExperiment(const ExperimentConfig& config,
                               std::shared_ptr<const std::vector<JobSpec>> jobs);

// ---- Shared-prefix forking (DESIGN.md §12) ---------------------------------
//
// A sweep grid re-runs the same workload trace under many policies. Until
// the first job arrives, the simulation's observable state is policy-
// independent: no job-visible policy callback can fire, only the clock, the
// tick/quantum machinery and the pre-arrival machine samples advance. The
// sweep engine therefore runs that prefix once per (workload, load, seed)
// group and forks every policy x cell from the stored snapshot. Outputs are
// byte-identical to cold runs (events JSONL, time-series CSV, sweep CSV,
// metrics); registry counters additionally match exactly for quantum-passive
// policies.

// Resolves the job trace for `config` (jobs_override or BuildWorkload) as an
// immutable shared vector, so forked cells alias one copy.
std::shared_ptr<const std::vector<JobSpec>> BuildJobs(const ExperimentConfig& config);

// Everything needed to start a cell at the divergence point instead of t=0.
// Built once per group by BuildPrefixSnapshot; read-only afterwards, so
// concurrent forked cells may share one snapshot without locking.
struct PrefixSnapshot {
  // Simulation clock at the end of the prefix run (< first arrival).
  SimTime divergence = 0;
  ResourceManager::ResumeState rm;
  // Prefix instrument state, restored into each forked cell's registry so a
  // quantum-passive cell's final counter dump matches a cold run exactly.
  RegistrySnapshot registry;
  // Pre-arrival machine samples; replayed into the forked cell's sampler.
  // Only populated when the snapshot was built with a time-series sampler.
  std::vector<TimeSeriesSampler::MachinePoint> machine_points;
  bool with_timeseries = false;
  // The workload trace, shared read-only by every forked cell.
  std::shared_ptr<const std::vector<JobSpec>> jobs;
};

// Policy-independent prefix feasibility: the group's prefix can be run once
// and snapshotted. Requires a non-empty trace whose first arrival lies
// beyond the first scheduler quantum (so the cold run's pending tick and
// quantum events were rescheduled after the arrivals were enqueued, which is
// what makes same-instant event order reproducible) and before the cutoff;
// CPU-ownership traces record the prefix and cannot fork.
bool PrefixForkable(const ExperimentConfig& config, const std::vector<JobSpec>& jobs);

// Full per-cell eligibility: PrefixForkable plus a policy without its own
// per-tick randomness (IRIX time-sharing draws from a policy-owned Rng and
// never elides, so it replays the prefix cold).
bool ForkEligible(const ExperimentConfig& config, const std::vector<JobSpec>& jobs);

// Runs the policy-independent prefix of `config`'s group once, under a
// sentinel policy that aborts on any job-visible callback (so a snapshot
// can only exist for a genuinely policy-independent prefix), and captures
// the divergence-point state. The snapshot records pre-arrival machine
// samples iff config.timeseries is set; every cell forked from it must make
// the same choice. Requires PrefixForkable(config, *jobs).
PrefixSnapshot BuildPrefixSnapshot(const ExperimentConfig& config,
                                   std::shared_ptr<const std::vector<JobSpec>> jobs);

// RunExperiment, but starting from `snapshot` instead of t=0. Requires
// ForkEligible(config, *snapshot.jobs) and a timeseries setting matching the
// snapshot's. Byte-identical to RunExperiment(config) for events JSONL,
// time-series CSV and every ExperimentResult field.
ExperimentResult RunExperimentFrom(const ExperimentConfig& config,
                                   const PrefixSnapshot& snapshot);

}  // namespace pdpa

#endif  // SRC_WORKLOAD_EXPERIMENT_H_
