#include "src/runtime/periodicity_detector.h"

#include "src/common/logging.h"

namespace pdpa {

PeriodicityDetector::PeriodicityDetector() : PeriodicityDetector(Params{}) {}

PeriodicityDetector::PeriodicityDetector(Params params) : params_(params) {
  PDPA_CHECK_GE(params.max_period, 1);
  PDPA_CHECK_GE(params.confirm_repeats, 1);
  PDPA_CHECK_GE(params.history, params.max_period * (params.confirm_repeats + 1));
}

void PeriodicityDetector::Reset() {
  history_.clear();
  period_ = 0;
  since_start_ = 0;
  periods_seen_ = 0;
}

bool PeriodicityDetector::PeriodHolds(int candidate) const {
  // The last `candidate * (confirm_repeats + 1)` events must be periodic
  // with period `candidate`.
  const int needed = candidate * (params_.confirm_repeats + 1);
  if (static_cast<int>(history_.size()) < needed) {
    return false;
  }
  const std::size_t n = history_.size();
  for (int i = 0; i < needed - candidate; ++i) {
    if (history_[n - 1 - static_cast<std::size_t>(i)] !=
        history_[n - 1 - static_cast<std::size_t>(i + candidate)]) {
      return false;
    }
  }
  return true;
}

bool PeriodicityDetector::OnLoopEvent(std::uint64_t loop_id) {
  history_.push_back(loop_id);
  if (static_cast<int>(history_.size()) > params_.history) {
    history_.pop_front();
  }

  if (period_ > 0) {
    // Validate the established period incrementally; fall back to searching
    // when the application changes phase.
    const std::size_t n = history_.size();
    if (n > static_cast<std::size_t>(period_) &&
        history_[n - 1] != history_[n - 1 - static_cast<std::size_t>(period_)]) {
      period_ = 0;
      since_start_ = 0;
      return false;
    }
    ++since_start_;
    if (since_start_ >= period_) {
      since_start_ = 0;
      ++periods_seen_;
      return true;
    }
    return false;
  }

  // Search for the smallest period that holds over confirm_repeats + 1
  // occurrences.
  for (int candidate = 1; candidate <= params_.max_period; ++candidate) {
    if (PeriodHolds(candidate)) {
      period_ = candidate;
      since_start_ = 0;
      ++periods_seen_;
      return true;
    }
  }
  return false;
}

}  // namespace pdpa
