// NANOS SelfAnalyzer: runtime speedup measurement.
//
// The SelfAnalyzer exploits the iterative structure of the application: it
// first runs a few iterations of the outer loop on a small number of
// processors (the *baseline*), then measures each iteration with the P
// allocated processors. The speedup is the ratio time-with-baseline /
// time-with-P, normalized to "versus one processor" with an Amdahl factor.
// Only *clean* iterations (constant processor count, no reconfiguration in
// flight) produce measurements.
#ifndef SRC_RUNTIME_SELF_ANALYZER_H_
#define SRC_RUNTIME_SELF_ANALYZER_H_

#include <functional>

#include "src/app/application.h"
#include "src/common/ids.h"
#include "src/common/rng.h"
#include "src/common/time_types.h"
#include "src/obs/counters.h"

namespace pdpa {

// One performance report delivered to the processor scheduler.
struct PerfReport {
  JobId job = kIdleJob;
  // Processor count the measurement was taken with.
  int procs = 0;
  // Estimated speedup versus one processor.
  double speedup = 1.0;
  // speedup / procs.
  double efficiency = 1.0;
  SimTime when = 0;
};

struct SelfAnalyzerParams {
  // Clean iterations measured with the baseline processor count before the
  // application is released to its full allocation.
  int baseline_iterations = 2;
  // Amdahl normalization factor (AF in the paper): assumed efficiency at the
  // baseline processor count, used to convert "speedup versus baseline" into
  // "speedup versus one processor".
  double amdahl_factor = 0.95;
  // Multiplicative measurement noise (standard deviation) on iteration
  // timings. Models timer jitter and interference.
  double noise_sigma = 0.02;
  // Clean iterations averaged before each report.
  int measure_iterations = 1;
};

class SelfAnalyzer {
 public:
  using ReportCallback = std::function<void(const PerfReport&)>;

  // `app` must outlive the analyzer. `registry` is the per-run counter
  // registry (borrowed); null falls back to Registry::Default().
  SelfAnalyzer(Application* app, SelfAnalyzerParams params, Rng rng, Registry* registry = nullptr);

  void set_report_callback(ReportCallback callback) { on_report_ = std::move(callback); }

  // Must be called immediately before Application::Start: engages the
  // baseline processor override.
  void OnJobStart(SimTime now);

  // Feed of completed iterations from the application.
  void OnIteration(const IterationRecord& record, SimTime now);

  bool baseline_done() const { return baseline_done_; }
  // Measured per-iteration time with baseline processors (seconds).
  double baseline_time_s() const { return baseline_time_s_; }
  int baseline_procs() const { return baseline_procs_; }

 private:
  double NoisySeconds(SimDuration wall) ;

  Application* app_;
  SelfAnalyzerParams params_;
  Rng rng_;
  ReportCallback on_report_;

  int baseline_procs_ = 1;
  bool baseline_done_ = false;
  int baseline_samples_ = 0;
  double baseline_sum_s_ = 0.0;
  double baseline_time_s_ = 0.0;

  int measure_samples_ = 0;
  double measure_sum_s_ = 0.0;
  int measure_procs_ = 0;

  Counter* reports_emitted_;
  Counter* dirty_iterations_;
  Counter* baselines_done_;
};

}  // namespace pdpa

#endif  // SRC_RUNTIME_SELF_ANALYZER_H_
