#include "src/runtime/self_analyzer.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/obs/counters.h"

namespace pdpa {

SelfAnalyzer::SelfAnalyzer(Application* app, SelfAnalyzerParams params, Rng rng,
                           Registry* registry)
    : app_(app), params_(params), rng_(rng) {
  Registry& reg = registry != nullptr ? *registry : Registry::Default();
  reports_emitted_ = reg.counter("analyzer.reports");
  dirty_iterations_ = reg.counter("analyzer.dirty_iterations");
  baselines_done_ = reg.counter("analyzer.baselines_done");
  PDPA_CHECK(app != nullptr);
  PDPA_CHECK_GE(params.baseline_iterations, 1);
  PDPA_CHECK_GE(params.measure_iterations, 1);
  PDPA_CHECK_GT(params.amdahl_factor, 0.0);
  PDPA_CHECK_LE(params.amdahl_factor, 1.0);
  baseline_procs_ = std::max(1, app->profile().baseline_procs);
}

void SelfAnalyzer::OnJobStart(SimTime now) {
  // Run the first iterations with few processors to establish the reference
  // time. ForceProcs is a no-op cap if the allocation is already smaller.
  app_->ForceProcs(baseline_procs_, now);
}

double SelfAnalyzer::NoisySeconds(SimDuration wall) {
  const double seconds = TimeToSeconds(wall);
  if (params_.noise_sigma <= 0.0) {
    return seconds;
  }
  const double factor = std::max(0.5, rng_.Gaussian(1.0, params_.noise_sigma));
  return seconds * factor;
}

void SelfAnalyzer::OnIteration(const IterationRecord& record, SimTime now) {
  if (!baseline_done_) {
    // Baseline phase: only clean iterations at the baseline count qualify.
    if (record.clean && record.procs == std::min(baseline_procs_, app_->allocated())) {
      baseline_sum_s_ += NoisySeconds(record.wall_time);
      ++baseline_samples_;
      if (baseline_samples_ >= params_.baseline_iterations) {
        baseline_time_s_ = baseline_sum_s_ / baseline_samples_;
        // The baseline may have run on fewer processors than requested if
        // the allocation was tiny; normalize with the count actually used.
        baseline_procs_ = record.procs;
        baseline_done_ = true;
        baselines_done_->Increment();
        app_->ForceProcs(0, now);  // Release to the full allocation.
      }
    }
    return;
  }

  if (!record.clean) {
    // A reallocation happened mid-iteration; discard and restart the window.
    dirty_iterations_->Increment();
    measure_samples_ = 0;
    measure_sum_s_ = 0.0;
    return;
  }
  if (measure_samples_ > 0 && record.procs != measure_procs_) {
    measure_samples_ = 0;
    measure_sum_s_ = 0.0;
  }
  measure_procs_ = record.procs;
  measure_sum_s_ += NoisySeconds(record.wall_time);
  ++measure_samples_;
  if (measure_samples_ < params_.measure_iterations) {
    return;
  }

  const double time_with_p = measure_sum_s_ / measure_samples_;
  measure_samples_ = 0;
  measure_sum_s_ = 0.0;
  if (time_with_p <= 0.0 || baseline_time_s_ <= 0.0) {
    return;
  }

  // Speedup versus baseline, then normalized to "versus one processor":
  // the baseline with b processors is assumed to run at AF * b speedup
  // (Amdahl's factor), except b == 1 which is exact.
  const double versus_baseline = baseline_time_s_ / time_with_p;
  const double baseline_speedup =
      baseline_procs_ <= 1 ? 1.0 : params_.amdahl_factor * baseline_procs_;
  PerfReport report;
  report.job = app_->id();
  report.procs = record.procs;
  report.speedup = std::max(0.05, versus_baseline * baseline_speedup);
  report.efficiency = report.speedup / std::max(1, record.procs);
  report.when = now;
  reports_emitted_->Increment();
  if (on_report_) {
    on_report_(report);
  }
}

}  // namespace pdpa
