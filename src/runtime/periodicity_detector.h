// Dynamic Periodicity Detector (DPD).
//
// When only a binary is available, SelfAnalyzer calls are injected with a
// dynamic interposition tool, and the iterative structure of the application
// must be discovered at runtime. The DPD receives the stream of parallel
// loop identifiers (the address of each encapsulated loop, in the real
// system) and flags the start of each period of the detected cycle.
#ifndef SRC_RUNTIME_PERIODICITY_DETECTOR_H_
#define SRC_RUNTIME_PERIODICITY_DETECTOR_H_

#include <cstdint>
#include <deque>

namespace pdpa {

class PeriodicityDetector {
 public:
  struct Params {
    // Longest period (in loop events) the detector searches for.
    int max_period = 64;
    // Number of full repetitions required before a period is trusted.
    int confirm_repeats = 2;
    // History retained, must be >= max_period * (confirm_repeats + 1).
    int history = 512;
  };

  PeriodicityDetector();
  explicit PeriodicityDetector(Params params);

  // Feeds one parallel-loop event. Returns true when this event starts a new
  // period of the detected cycle (the signal used to delimit outer-loop
  // iterations for the SelfAnalyzer).
  bool OnLoopEvent(std::uint64_t loop_id);

  // Detected period length in loop events; 0 while undetected.
  int period() const { return period_; }
  bool detected() const { return period_ > 0; }

  // Number of period starts reported so far.
  int periods_seen() const { return periods_seen_; }

  void Reset();

 private:
  bool PeriodHolds(int candidate) const;

  Params params_;
  std::deque<std::uint64_t> history_;
  int period_ = 0;
  // Events since the last reported period start.
  int since_start_ = 0;
  int periods_seen_ = 0;
};

}  // namespace pdpa

#endif  // SRC_RUNTIME_PERIODICITY_DETECTOR_H_
