#include "src/runtime/nth_lib.h"

#include <utility>

#include "src/common/logging.h"

namespace pdpa {

NthLibBinding::NthLibBinding(std::unique_ptr<Application> app, SelfAnalyzerParams analyzer_params,
                             Rng rng, Registry* registry)
    : app_(std::move(app)) {
  PDPA_CHECK(app_ != nullptr);
  analyzer_ = std::make_unique<SelfAnalyzer>(app_.get(), analyzer_params, rng, registry);
  app_->set_iteration_callback([this](const IterationRecord& record) {
    analyzer_->OnIteration(record, record.end_time);
  });
}

void NthLibBinding::set_report_callback(SelfAnalyzer::ReportCallback callback) {
  analyzer_->set_report_callback(std::move(callback));
}

void NthLibBinding::StartJob(SimTime now) {
  analyzer_->OnJobStart(now);
  app_->Start(now);
}

void NthLibBinding::StartJobWithoutAnalyzer(SimTime now) { app_->Start(now); }

void NthLibBinding::SetProcessors(int procs, SimTime now) { app_->SetAllocation(procs, now); }

}  // namespace pdpa
