// NthLib binding: the glue between one application, its SelfAnalyzer and the
// NANOS Resource Manager.
//
// In the real system NthLib is the OpenMP runtime: it requests processors,
// reacts to allocation changes (re-forming the thread team between parallel
// regions) and hosts the SelfAnalyzer. In the simulator the Application
// models the execution; this binding reproduces the *coordination* contract:
//   RM -> runtime : SetProcessors(n)
//   runtime -> RM : performance reports (via callback)
#ifndef SRC_RUNTIME_NTH_LIB_H_
#define SRC_RUNTIME_NTH_LIB_H_

#include <memory>

#include "src/app/application.h"
#include "src/common/rng.h"
#include "src/runtime/self_analyzer.h"

namespace pdpa {

class NthLibBinding {
 public:
  // `registry` is the per-run counter registry forwarded to the
  // SelfAnalyzer (borrowed); null falls back to Registry::Default().
  NthLibBinding(std::unique_ptr<Application> app, SelfAnalyzerParams analyzer_params, Rng rng,
                Registry* registry = nullptr);

  NthLibBinding(const NthLibBinding&) = delete;
  NthLibBinding& operator=(const NthLibBinding&) = delete;

  Application& app() { return *app_; }
  const Application& app() const { return *app_; }
  SelfAnalyzer& analyzer() { return *analyzer_; }

  // Forwarded to the scheduler whenever the SelfAnalyzer produces a new
  // measurement.
  void set_report_callback(SelfAnalyzer::ReportCallback callback);

  // RM-side entry points.
  void StartJob(SimTime now);
  // Starts without engaging the SelfAnalyzer's baseline protocol: used for
  // rigid (non-malleable) jobs and for time-sharing runtimes that do not
  // coordinate with the RM.
  void StartJobWithoutAnalyzer(SimTime now);
  void SetProcessors(int procs, SimTime now);

  // Drives the application forward; called every simulation tick.
  void Tick(SimTime now, SimDuration dt) { app_->Advance(now, dt); }

 private:
  std::unique_ptr<Application> app_;
  std::unique_ptr<SelfAnalyzer> analyzer_;
};

}  // namespace pdpa

#endif  // SRC_RUNTIME_NTH_LIB_H_
