// Deterministic pseudo-random number generation.
//
// The simulator must be reproducible bit-for-bit across runs and platforms,
// so we implement a fixed algorithm (xoshiro256**, seeded via SplitMix64)
// instead of relying on std::mt19937 distributions whose exact output is
// implementation-defined for some distribution types.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstdint>

namespace pdpa {

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t NextU64();

  // Uniform double in [0, 1).
  double NextDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int UniformInt(int lo, int hi);

  // Standard normal via Box-Muller (deterministic, no cached spare state
  // visible to callers beyond this object).
  double Gaussian(double mean, double stddev);

  // Exponential with the given rate (1/mean). Used for Poisson arrivals.
  double Exponential(double rate);

  // Creates an independent child stream; used to decorrelate subsystems that
  // draw in data-dependent order.
  Rng Fork();

 private:
  std::uint64_t state_[4];
  bool has_spare_gaussian_ = false;
  double spare_gaussian_ = 0.0;
};

}  // namespace pdpa

#endif  // SRC_COMMON_RNG_H_
