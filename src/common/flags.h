// Minimal command-line flag parsing for the tools and benches.
//
// Supports --key=value, --key value, and bare --switch (value "true").
// Positional arguments are collected in order. Unknown flags are kept so
// callers can reject them explicitly.
#ifndef SRC_COMMON_FLAGS_H_
#define SRC_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

namespace pdpa {

class FlagSet {
 public:
  // Parses argv (excluding argv[0]).
  static FlagSet Parse(int argc, const char* const* argv);

  bool Has(const std::string& name) const;

  // Typed getters with defaults; a present-but-malformed value returns the
  // default and sets the error flag.
  std::string GetString(const std::string& name, const std::string& default_value) const;
  int GetInt(const std::string& name, int default_value);
  double GetDouble(const std::string& name, double default_value);
  bool GetBool(const std::string& name, bool default_value);

  const std::vector<std::string>& positional() const { return positional_; }

  // Names seen on the command line but never queried; call after all Get*
  // calls to reject typos.
  std::vector<std::string> UnconsumedFlags() const;

  bool had_parse_error() const { return parse_error_; }

 private:
  std::map<std::string, std::string> values_;
  // Consumption tracking is bookkeeping, not observable state: getters stay
  // const while recording which flags were queried.
  mutable std::map<std::string, bool> consumed_;
  std::vector<std::string> positional_;
  bool parse_error_ = false;
};

}  // namespace pdpa

#endif  // SRC_COMMON_FLAGS_H_
