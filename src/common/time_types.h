// Time representation used across the simulator.
//
// Simulated time is kept in integer microseconds to make every run perfectly
// deterministic and insensitive to floating-point accumulation order. All
// conversions to/from seconds happen at the edges (configuration, reporting).
#ifndef SRC_COMMON_TIME_TYPES_H_
#define SRC_COMMON_TIME_TYPES_H_

#include <cstdint>

namespace pdpa {

// Simulated time in microseconds since the start of the experiment.
using SimTime = std::int64_t;

// A duration in microseconds. Kept as a distinct alias for readability.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000;
inline constexpr SimDuration kSecond = 1000 * 1000;

// Converts a floating-point number of seconds to SimTime, rounding to the
// nearest microsecond.
constexpr SimTime SecondsToTime(double seconds) {
  return static_cast<SimTime>(seconds * static_cast<double>(kSecond) + (seconds >= 0 ? 0.5 : -0.5));
}

constexpr SimTime MillisToTime(double millis) {
  return SecondsToTime(millis / 1000.0);
}

constexpr double TimeToSeconds(SimTime t) { return static_cast<double>(t) / kSecond; }

constexpr double TimeToMillis(SimTime t) { return static_cast<double>(t) / kMillisecond; }

}  // namespace pdpa

#endif  // SRC_COMMON_TIME_TYPES_H_
