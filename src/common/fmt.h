// Zero-allocation append-to-buffer number formatters — the core of the
// observability serialization fast path.
//
// Every sink used to build one heap `std::string` per field via the
// snprintf-backed StrFormat; these helpers format into a caller-provided
// buffer instead (typically a reusable per-event scratch string), so
// steady-state serialization performs no heap allocation at all.
//
// Formatting contract: the output is byte-identical to the printf formats
// the sinks have always used —
//   AppendInt      == StrFormat("%lld", v)
//   AppendUint     == StrFormat("%llu", v)
//   AppendGeneral  == StrFormat("%.<precision>g", v)
//   AppendFixed    == StrFormat("%.<precision>f", v)
// The fast implementations ride std::to_chars, whose precision overloads
// are specified to produce printf-style output; the equivalence is pinned
// by an exhaustive-corpus golden test against StrFormat
// (tests/serialization_test.cc). On toolchains without floating-point
// to_chars (or with -DPDPA_FMT_FORCE_SNPRINTF, the pinned escape hatch if
// a platform ever diverges from the contract) the same functions fall back
// to snprintf into a stack buffer — still allocation-free, just slower.
#ifndef SRC_COMMON_FMT_H_
#define SRC_COMMON_FMT_H_

#include <string>

namespace pdpa {

// Appends the decimal form of `value` to *out. Exactly "%lld" / "%llu".
void AppendInt(std::string* out, long long value);
void AppendUint(std::string* out, unsigned long long value);

// Appends `value` in printf "%.<precision>g" form (shortest of fixed /
// scientific at the given significant digits, trailing zeros removed).
// precision must be in [1, 17]. The sinks' default contract is 10.
void AppendGeneral(std::string* out, double value, int precision = 10);

// Appends `value` in printf "%.<precision>f" form (fixed point, exactly
// `precision` fractional digits). precision must be in [0, 17].
void AppendFixed(std::string* out, double value, int precision);

}  // namespace pdpa

#endif  // SRC_COMMON_FMT_H_
