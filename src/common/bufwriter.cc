#include "src/common/bufwriter.h"

namespace pdpa {

BufWriter::BufWriter(std::ostream* out) : out_(out) {
  // A null sink (recording disabled) discards every Append; skip the 64 KiB
  // reservation so disabled logs stay allocation-free too.
  if (out_ != nullptr) {
    buffer_.reserve(kBufferSize);
  }
}

BufWriter::~BufWriter() { Flush(); }

void BufWriter::Append(std::string_view bytes) {
  if (out_ == nullptr) {
    return;  // disabled sink: discard
  }
  bytes_written_ += bytes.size();
  if (buffer_.size() + bytes.size() > kBufferSize) {
    Flush();
    if (bytes.size() > kBufferSize) {
      // Oversized record: bypass the buffer entirely.
      out_->write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      return;
    }
  }
  buffer_.append(bytes.data(), bytes.size());
}

void BufWriter::Append(char c) {
  if (out_ == nullptr) {
    return;  // disabled sink: discard
  }
  bytes_written_ += 1;
  if (buffer_.size() + 1 > kBufferSize) Flush();
  buffer_.push_back(c);
}

void BufWriter::Reset(std::ostream* out) {
  Flush();
  out_ = out;
  bytes_written_ = 0;
  if (out_ != nullptr && buffer_.capacity() < kBufferSize) {
    buffer_.reserve(kBufferSize);
  }
}

void BufWriter::Flush() {
  if (out_ != nullptr && !buffer_.empty()) {
    out_->write(buffer_.data(), static_cast<std::streamsize>(buffer_.size()));
    buffer_.clear();
  }
}

}  // namespace pdpa
