// BufWriter — a 64 KiB buffered byte sink over std::ostream.
//
// The observability sinks (EventLog, TimeSeriesSampler, ParaverWriter,
// sweep CSV) emit many small lines; writing each line straight to an
// ostream pays virtual-dispatch + locale machinery per line. BufWriter
// coalesces appends into one flat buffer and hands the stream one
// `write()` per ~64 KiB.
//
// Buffer ownership rules (DESIGN.md §9): BufWriter owns its coalescing
// buffer; callers own any per-record scratch buffer they format into
// before Append(). The destination ostream outlives the BufWriter, and
// bytes are only guaranteed to have reached it after Flush() — the
// destructor flushes as a backstop, but call sites that read a captured
// ostringstream while the writer is still alive must Flush() first.
#ifndef SRC_COMMON_BUFWRITER_H_
#define SRC_COMMON_BUFWRITER_H_

#include <ostream>
#include <string>
#include <string_view>

namespace pdpa {

class BufWriter {
 public:
  static constexpr size_t kBufferSize = 64 * 1024;

  explicit BufWriter(std::ostream* out);
  ~BufWriter();

  BufWriter(const BufWriter&) = delete;
  BufWriter& operator=(const BufWriter&) = delete;

  // Appends bytes; spills to the ostream whenever the buffer fills.
  void Append(std::string_view bytes);
  void Append(char c);

  // Writes any buffered bytes through to the ostream. Does not
  // std::flush the ostream itself — per-line syscalls are exactly what
  // this class exists to avoid; the stream flushes on close.
  void Flush();

  // Flushes to the old sink, then retargets the writer at `out` (null
  // disables) and zeroes bytes_written(). The coalescing buffer's capacity
  // is kept so a reused writer stays allocation-free across runs.
  void Reset(std::ostream* out);

  // Total bytes accepted (buffered + written). Used by benches.
  unsigned long long bytes_written() const { return bytes_written_; }

 private:
  std::ostream* out_;
  std::string buffer_;
  unsigned long long bytes_written_ = 0;
};

}  // namespace pdpa

#endif  // SRC_COMMON_BUFWRITER_H_
