// Annotated, rank-ordered mutex wrapper for clang thread-safety analysis
// and lock-hierarchy auditing.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability annotations,
// so code locking through them is invisible to -Wthread-safety and every
// PDPA_GUARDED_BY member access would be flagged. pdpa::Mutex wraps
// std::mutex with the capability attributes, and pdpa::MutexLock is the
// RAII guard the analysis understands. Zero overhead in normal builds: both
// compile to the std::mutex calls they wrap.
//
// Lock ranks. Every pdpa::Mutex must declare its place in the repo-wide
// lock hierarchy at construction:
//
//   Mutex mutex_{PDPA_LOCK_RANK(40)};
//
// Locks may only be acquired in strictly increasing rank order; the
// hierarchy itself (who ranks below whom, and why) is documented in
// DESIGN.md §8. The contract is enforced three ways, and all three pin the
// *same* hierarchy:
//   * construction: Mutex has no default constructor, so an unranked mutex
//     does not compile (tests/tsa_probe/unranked_mutex.cc keeps that
//     load-bearing);
//   * statically: pdpa_lint's `lock-order` rule indexes every PDPA_LOCK_RANK
//     declaration and every MutexLock site repo-wide and flags any
//     acquisition whose textually-held set violates the rank order;
//   * at runtime (-DPDPA_AUDIT): every thread keeps a thread-local stack of
//     held ranks, and Lock() PDPA_CHECK-fails on the first out-of-order
//     acquisition — covering the std::unique_lock / condition-variable
//     paths the static rule cannot see.
//
// The lowercase lock()/unlock()/try_lock() aliases satisfy BasicLockable so
// std::unique_lock<pdpa::Mutex> and std::condition_variable_any work with
// ranked mutexes (the cluster controller's wait loops need them).
//
// Also here: ThreadConfinementChecker, the audit-build companion for
// structures that are *not* mutex-protected because they are confined to a
// single thread by construction (per-cell EventLog / TimeSeriesSampler
// sinks in the sweep engine). Under PDPA_AUDIT it binds to the first thread
// that touches the structure and aborts if any other thread follows; in
// normal builds it is an empty struct and every call is a no-op.
#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <mutex>

#include "src/common/thread_annotations.h"

#ifdef PDPA_AUDIT
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "src/common/logging.h"
#endif

namespace pdpa {

// A mutex's position in the repo-wide lock hierarchy. Spell it with
// PDPA_LOCK_RANK so pdpa_lint's repo index can find every assignment.
struct LockRank {
  int value = 0;
};

// Declares a mutex's rank at its construction site:
//   Mutex mutex_{PDPA_LOCK_RANK(40)};
// Ranks are unique per mutex declaration and must strictly increase along
// every acquisition chain (see DESIGN.md §8 for the table).
#define PDPA_LOCK_RANK(n) \
  ::pdpa::LockRank { n }

#ifdef PDPA_AUDIT
namespace lock_audit {
// Ranks currently held by this thread, in acquisition order. Function-local
// thread_local so the header stays include-anywhere.
inline std::vector<int>& HeldRanks() {
  thread_local std::vector<int> held;
  return held;
}
}  // namespace lock_audit
#endif

class PDPA_CAPABILITY("mutex") Mutex {
 public:
  // No unranked mutexes: every Mutex states its hierarchy position.
  // tests/tsa_probe/unranked_mutex.cc pins this as a negative-compile probe.
  Mutex() = delete;
  explicit Mutex(LockRank rank)
#ifdef PDPA_AUDIT
      : rank_(rank.value)
#endif
  {
    (void)rank;
  }
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PDPA_ACQUIRE() {
    // Order is checked *before* blocking: an inversion should fail the
    // audit run deterministically, not only when it happens to deadlock.
    AuditCheckOrder();
    mutex_.lock();
    AuditPush();
  }
  void Unlock() PDPA_RELEASE() {
    AuditPop();
    mutex_.unlock();
  }
  bool TryLock() PDPA_TRY_ACQUIRE(true) {
    if (!mutex_.try_lock()) {
      return false;
    }
    // A try-lock cannot deadlock, but an out-of-order success still
    // violates the hierarchy the static rule enforces; keep them aligned.
    AuditCheckOrder();
    AuditPush();
    return true;
  }

  // BasicLockable spelling for std::unique_lock / std::condition_variable_any
  // (the cluster controller's wait loops). Same audit path as Lock/Unlock.
  void lock() PDPA_ACQUIRE() { Lock(); }
  void unlock() PDPA_RELEASE() { Unlock(); }
  bool try_lock() PDPA_TRY_ACQUIRE(true) { return TryLock(); }

 private:
#ifdef PDPA_AUDIT
  void AuditCheckOrder() const {
    const std::vector<int>& held = lock_audit::HeldRanks();
    PDPA_CHECK(held.empty() || held.back() < rank_)
        << "[PDPA_AUDIT] lock-order inversion: acquiring rank " << rank_
        << " while holding rank " << held.back()
        << " (ranks must strictly increase; see DESIGN.md §8)";
  }
  void AuditPush() const { lock_audit::HeldRanks().push_back(rank_); }
  void AuditPop() const {
    std::vector<int>& held = lock_audit::HeldRanks();
    // Unlock order may differ from reverse-acquisition order (unique_lock
    // juggling); drop the most recent occurrence of this rank.
    for (std::size_t i = held.size(); i > 0; --i) {
      if (held[i - 1] == rank_) {
        held.erase(held.begin() + static_cast<std::ptrdiff_t>(i - 1));
        return;
      }
    }
    PDPA_CHECK(false) << "[PDPA_AUDIT] unlocking rank " << rank_ << " that is not held";
  }
  const int rank_;
#else
  void AuditCheckOrder() const {}
  void AuditPush() const {}
  void AuditPop() const {}
#endif

  std::mutex mutex_;
};

// RAII lock; the scoped_lockable annotation lets the analysis track the
// critical section's extent.
class PDPA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) PDPA_ACQUIRE(mutex) : mutex_(mutex) { mutex_->Lock(); }
  ~MutexLock() PDPA_RELEASE() { mutex_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mutex_;
};

#ifdef PDPA_AUDIT
class ThreadConfinementChecker {
 public:
  // Call from every mutating entry point. Binds to the calling thread on
  // first use; any later call from a different thread is a fatal error
  // (`what` names the structure in the abort message).
  void AssertConfined(const char* what) {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // id() == "no thread"
    if (owner_.compare_exchange_strong(expected, self)) {
      return;  // First touch: this thread owns the structure now.
    }
    if (expected != self) {
      std::fprintf(  // lint: direct-io-ok (crash-path diagnostic before abort)
          stderr, "[PDPA_AUDIT] %s touched by a second thread\n", what);
      std::abort();
    }
  }

  // Releases the binding so the next AssertConfined re-binds to its caller.
  // For deliberate ownership transfers with external synchronization (the
  // cluster engine hands node sinks between shard workers and the
  // controller across a happens-before edge); not an escape hatch for
  // genuinely concurrent access.
  void Handoff() { owner_.store(std::thread::id{}); }

 private:
  std::atomic<std::thread::id> owner_{};
};
#else
class ThreadConfinementChecker {
 public:
  void AssertConfined(const char*) {}
  void Handoff() {}
};
#endif

}  // namespace pdpa

#endif  // SRC_COMMON_MUTEX_H_
