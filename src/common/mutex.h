// Annotated mutex wrapper for clang thread-safety analysis.
//
// libstdc++'s std::mutex / std::lock_guard carry no capability annotations,
// so code locking through them is invisible to -Wthread-safety and every
// PDPA_GUARDED_BY member access would be flagged. pdpa::Mutex wraps
// std::mutex with the capability attributes, and pdpa::MutexLock is the
// RAII guard the analysis understands. Zero overhead: both compile to the
// std::mutex calls they wrap.
//
// Also here: ThreadConfinementChecker, the audit-build companion for
// structures that are *not* mutex-protected because they are confined to a
// single thread by construction (per-cell EventLog / TimeSeriesSampler
// sinks in the sweep engine). Under PDPA_AUDIT it binds to the first thread
// that touches the structure and aborts if any other thread follows; in
// normal builds it is an empty struct and every call is a no-op.
#ifndef SRC_COMMON_MUTEX_H_
#define SRC_COMMON_MUTEX_H_

#include <mutex>

#include "src/common/thread_annotations.h"

#ifdef PDPA_AUDIT
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#endif

namespace pdpa {

class PDPA_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() PDPA_ACQUIRE() { mutex_.lock(); }
  void Unlock() PDPA_RELEASE() { mutex_.unlock(); }
  bool TryLock() PDPA_TRY_ACQUIRE(true) { return mutex_.try_lock(); }

 private:
  std::mutex mutex_;
};

// RAII lock; the scoped_lockable annotation lets the analysis track the
// critical section's extent.
class PDPA_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mutex) PDPA_ACQUIRE(mutex) : mutex_(mutex) { mutex_->Lock(); }
  ~MutexLock() PDPA_RELEASE() { mutex_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mutex_;
};

#ifdef PDPA_AUDIT
class ThreadConfinementChecker {
 public:
  // Call from every mutating entry point. Binds to the calling thread on
  // first use; any later call from a different thread is a fatal error
  // (`what` names the structure in the abort message).
  void AssertConfined(const char* what) {
    const std::thread::id self = std::this_thread::get_id();
    std::thread::id expected{};  // id() == "no thread"
    if (owner_.compare_exchange_strong(expected, self)) {
      return;  // First touch: this thread owns the structure now.
    }
    if (expected != self) {
      std::fprintf(  // lint: direct-io-ok (crash-path diagnostic before abort)
          stderr, "[PDPA_AUDIT] %s touched by a second thread\n", what);
      std::abort();
    }
  }

  // Releases the binding so the next AssertConfined re-binds to its caller.
  // For deliberate ownership transfers with external synchronization (the
  // cluster engine hands node sinks between shard workers and the
  // controller across a happens-before edge); not an escape hatch for
  // genuinely concurrent access.
  void Handoff() { owner_.store(std::thread::id{}); }

 private:
  std::atomic<std::thread::id> owner_{};
};
#else
class ThreadConfinementChecker {
 public:
  void AssertConfined(const char*) {}
  void Handoff() {}
};
#endif

}  // namespace pdpa

#endif  // SRC_COMMON_MUTEX_H_
