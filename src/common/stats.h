// Small statistics helpers used for metric aggregation and trace analysis.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <vector>

namespace pdpa {

// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const;
  // Sample variance (n-1 denominator); 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const;
  double max() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// The project's sanctioned floating-point comparison: |a - b| <= eps.
// Direct ==/!= on float/double is rejected by pdpa_lint (rule float-eq);
// comparisons that genuinely mean "bitwise same value" carry a
// `// lint: float-eq-ok` justification instead.
inline bool NearlyEqual(double a, double b, double eps = 1e-9) {
  const double diff = a - b;
  return diff <= eps && diff >= -eps;
}

// Percentile of a data set using linear interpolation between order
// statistics. `p` is in [0, 100]. Returns 0 for an empty set.
double Percentile(std::vector<double> values, double p);

// Arithmetic mean; 0 for an empty set.
double Mean(const std::vector<double>& values);

// Exponentially weighted moving average helper.
class Ewma {
 public:
  // `alpha` is the weight of the newest sample, in (0, 1].
  explicit Ewma(double alpha);

  void Add(double x);
  bool empty() const { return !initialized_; }
  double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

}  // namespace pdpa

#endif  // SRC_COMMON_STATS_H_
