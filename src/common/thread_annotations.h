// Clang thread-safety annotation macros (no-ops on other compilers).
//
// These drive clang's static lock-discipline analysis (-Wthread-safety,
// promoted to an error in this project's clang builds): a member annotated
// PDPA_GUARDED_BY(mu) may only be touched while `mu` is held, a function
// annotated PDPA_REQUIRES(mu) may only be called with `mu` held, and the
// compiler proves both at every call site. Use them with pdpa::Mutex /
// pdpa::MutexLock (src/common/mutex.h) — std::mutex carries no capability
// annotations under libstdc++, so the analysis cannot see it.
//
// Naming follows the canonical clang template with a PDPA_ prefix to stay
// out of other libraries' macro namespaces.
#ifndef SRC_COMMON_THREAD_ANNOTATIONS_H_
#define SRC_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define PDPA_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define PDPA_THREAD_ANNOTATION__(x)  // no-op
#endif

// Marks a class as a lockable capability ("mutex" names the capability kind
// in diagnostics).
#define PDPA_CAPABILITY(x) PDPA_THREAD_ANNOTATION__(capability(x))

// Marks an RAII class whose lifetime acquires/releases a capability.
#define PDPA_SCOPED_CAPABILITY PDPA_THREAD_ANNOTATION__(scoped_lockable)

// Data members: may only be accessed while the given capability is held.
#define PDPA_GUARDED_BY(x) PDPA_THREAD_ANNOTATION__(guarded_by(x))
// Pointer members: the pointed-to data is protected (the pointer itself is
// not).
#define PDPA_PT_GUARDED_BY(x) PDPA_THREAD_ANNOTATION__(pt_guarded_by(x))

// Functions: caller must hold / must not hold the capability.
#define PDPA_REQUIRES(...) PDPA_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define PDPA_EXCLUDES(...) PDPA_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

// Functions that acquire / release the capability themselves.
#define PDPA_ACQUIRE(...) PDPA_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define PDPA_RELEASE(...) PDPA_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define PDPA_TRY_ACQUIRE(...) PDPA_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))

// Returns the mutex guarding this object (for wrapper accessors).
#define PDPA_RETURN_CAPABILITY(x) PDPA_THREAD_ANNOTATION__(lock_returned(x))

// Escape hatch for code the analysis cannot model; keep rare and justified.
#define PDPA_NO_THREAD_SAFETY_ANALYSIS PDPA_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // SRC_COMMON_THREAD_ANNOTATIONS_H_
