// String helpers used by the SWF parser and table printers.
#ifndef SRC_COMMON_STRINGS_H_
#define SRC_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace pdpa {

// Splits on any run of the delimiter; no empty tokens are produced.
std::vector<std::string> SplitTokens(std::string_view text, char delimiter);

// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view text);

// Parses a double/int; returns false and leaves `out` untouched on failure.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt(std::string_view text, int* out);
bool ParseInt64(std::string_view text, long long* out);

// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...) __attribute__((format(printf, 1, 2)));

}  // namespace pdpa

#endif  // SRC_COMMON_STRINGS_H_
