#include "src/common/fmt.h"

#include <cassert>

#if !defined(PDPA_FMT_FORCE_SNPRINTF)
#include <charconv>
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
#define PDPA_FMT_HAVE_TO_CHARS 1
#endif
#endif

#if !defined(PDPA_FMT_HAVE_TO_CHARS)
#include <cstdio>
#endif

namespace pdpa {
namespace {

// Worst case across all four formats: "%.17f" of -DBL_MAX is 1 (sign) +
// 309 (integer digits) + 1 (point) + 17 (fraction) = 328 chars. 352 gives
// headroom without mattering for a stack buffer.
constexpr int kMaxNumberChars = 352;

}  // namespace

#if defined(PDPA_FMT_HAVE_TO_CHARS)

void AppendInt(std::string* out, long long value) {
  char buf[kMaxNumberChars];
  auto res = std::to_chars(buf, buf + sizeof(buf), value);
  assert(res.ec == std::errc());
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

void AppendUint(std::string* out, unsigned long long value) {
  char buf[kMaxNumberChars];
  auto res = std::to_chars(buf, buf + sizeof(buf), value);
  assert(res.ec == std::errc());
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

void AppendGeneral(std::string* out, double value, int precision) {
  assert(precision >= 1 && precision <= 17);
  char buf[kMaxNumberChars];
  auto res = std::to_chars(buf, buf + sizeof(buf), value,
                           std::chars_format::general, precision);
  assert(res.ec == std::errc());
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

void AppendFixed(std::string* out, double value, int precision) {
  assert(precision >= 0 && precision <= 17);
  char buf[kMaxNumberChars];
  auto res = std::to_chars(buf, buf + sizeof(buf), value,
                           std::chars_format::fixed, precision);
  assert(res.ec == std::errc());
  out->append(buf, static_cast<size_t>(res.ptr - buf));
}

#else  // snprintf fallback: same bytes, one formatted stack write, no heap.

void AppendInt(std::string* out, long long value) {
  char buf[kMaxNumberChars];
  int n = std::snprintf(buf, sizeof(buf), "%lld", value);
  assert(n > 0 && n < kMaxNumberChars);
  out->append(buf, static_cast<size_t>(n));
}

void AppendUint(std::string* out, unsigned long long value) {
  char buf[kMaxNumberChars];
  int n = std::snprintf(buf, sizeof(buf), "%llu", value);
  assert(n > 0 && n < kMaxNumberChars);
  out->append(buf, static_cast<size_t>(n));
}

void AppendGeneral(std::string* out, double value, int precision) {
  assert(precision >= 1 && precision <= 17);
  char buf[kMaxNumberChars];
  int n = std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
  assert(n > 0 && n < kMaxNumberChars);
  out->append(buf, static_cast<size_t>(n));
}

void AppendFixed(std::string* out, double value, int precision) {
  assert(precision >= 0 && precision <= 17);
  char buf[kMaxNumberChars];
  int n = std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  assert(n > 0 && n < kMaxNumberChars);
  out->append(buf, static_cast<size_t>(n));
}

#endif  // PDPA_FMT_HAVE_TO_CHARS

}  // namespace pdpa
