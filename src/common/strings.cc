#include "src/common/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cerrno>

namespace pdpa {

std::vector<std::string> SplitTokens(std::string_view text, char delimiter) {
  std::vector<std::string> tokens;
  std::size_t start = 0;
  while (start < text.size()) {
    while (start < text.size() && text[start] == delimiter) {
      ++start;
    }
    std::size_t end = start;
    while (end < text.size() && text[end] != delimiter) {
      ++end;
    }
    if (end > start) {
      tokens.emplace_back(text.substr(start, end - start));
    }
    start = end;
  }
  return tokens;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  while (begin < text.size() && std::isspace(static_cast<unsigned char>(text[begin])) != 0) {
    ++begin;
  }
  std::size_t end = text.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1])) != 0) {
    --end;
  }
  return text.substr(begin, end - begin);
}

bool ParseDouble(std::string_view text, double* out) {
  const std::string buffer(Trim(text));
  if (buffer.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buffer.c_str(), &end);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *out = value;
  return true;
}

bool ParseInt(std::string_view text, int* out) {
  long long wide = 0;
  if (!ParseInt64(text, &wide)) {
    return false;
  }
  *out = static_cast<int>(wide);
  return true;
}

bool ParseInt64(std::string_view text, long long* out) {
  const std::string buffer(Trim(text));
  if (buffer.empty()) {
    return false;
  }
  errno = 0;
  char* end = nullptr;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) {
    return false;
  }
  *out = value;
  return true;
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  const int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  if (size < 0) {
    va_end(args_copy);
    return std::string();
  }
  std::string result(static_cast<std::size_t>(size), '\0');
  std::vsnprintf(result.data(), result.size() + 1, format, args_copy);
  va_end(args_copy);
  return result;
}

}  // namespace pdpa
