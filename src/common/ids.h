// Shared identifier types.
#ifndef SRC_COMMON_IDS_H_
#define SRC_COMMON_IDS_H_

namespace pdpa {

// Identifies one submitted job (application instance) within an experiment.
using JobId = int;

// Owner value for a CPU that is not running any job.
inline constexpr JobId kIdleJob = -1;

}  // namespace pdpa

#endif  // SRC_COMMON_IDS_H_
