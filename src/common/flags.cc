#include "src/common/flags.h"

#include <string_view>

#include "src/common/strings.h"

namespace pdpa {

FlagSet FlagSet::Parse(int argc, const char* const* argv) {
  FlagSet flags;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      flags.positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    const std::size_t eq = body.find('=');
    if (eq != std::string_view::npos) {
      flags.values_[std::string(body.substr(0, eq))] = std::string(body.substr(eq + 1));
      continue;
    }
    // --key value, unless the next token is another flag (then it's a
    // boolean switch).
    if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      flags.values_[std::string(body)] = argv[i + 1];
      ++i;
    } else {
      flags.values_[std::string(body)] = "true";
    }
  }
  for (const auto& [name, value] : flags.values_) {
    flags.consumed_[name] = false;
  }
  return flags;
}

bool FlagSet::Has(const std::string& name) const { return values_.contains(name); }

std::string FlagSet::GetString(const std::string& name, const std::string& default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  consumed_[name] = true;
  return it->second;
}

int FlagSet::GetInt(const std::string& name, int default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  consumed_[name] = true;
  int value = 0;
  if (!ParseInt(it->second, &value)) {
    parse_error_ = true;
    return default_value;
  }
  return value;
}

double FlagSet::GetDouble(const std::string& name, double default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  consumed_[name] = true;
  double value = 0;
  if (!ParseDouble(it->second, &value)) {
    parse_error_ = true;
    return default_value;
  }
  return value;
}

bool FlagSet::GetBool(const std::string& name, bool default_value) {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  consumed_[name] = true;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::vector<std::string> FlagSet::UnconsumedFlags() const {
  std::vector<std::string> unconsumed;
  for (const auto& [name, used] : consumed_) {
    if (!used) {
      unconsumed.push_back(name);
    }
  }
  return unconsumed;
}

}  // namespace pdpa
