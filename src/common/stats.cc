#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace pdpa {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::mean() const { return count_ == 0 ? 0.0 : mean_; }

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::min() const { return count_ == 0 ? 0.0 : min_; }

double RunningStat::max() const { return count_ == 0 ? 0.0 : max_; }

double Percentile(std::vector<double> values, double p) {
  if (values.empty()) {
    return 0.0;
  }
  PDPA_CHECK_GE(p, 0.0);
  PDPA_CHECK_LE(p, 100.0);
  std::sort(values.begin(), values.end());
  if (values.size() == 1) {
    return values[0];
  }
  const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Mean(const std::vector<double>& values) {
  if (values.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double v : values) {
    sum += v;
  }
  return sum / static_cast<double>(values.size());
}

Ewma::Ewma(double alpha) : alpha_(alpha) {
  PDPA_CHECK_GT(alpha, 0.0);
  PDPA_CHECK_LE(alpha, 1.0);
}

void Ewma::Add(double x) {
  if (!initialized_) {
    value_ = x;
    initialized_ = true;
    return;
  }
  value_ = alpha_ * x + (1.0 - alpha_) * value_;
}

}  // namespace pdpa
