#include "src/common/rng.h"

#include <cmath>

#include "src/common/logging.h"

namespace pdpa {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9E3779B97f4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

std::uint64_t Rng::NextU64() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

int Rng::UniformInt(int lo, int hi) {
  PDPA_CHECK_LE(lo, hi);
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(NextU64() % span);
}

double Rng::Gaussian(double mean, double stddev) {
  if (has_spare_gaussian_) {
    has_spare_gaussian_ = false;
    return mean + stddev * spare_gaussian_;
  }
  double u1 = 0.0;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  const double z0 = mag * std::cos(2.0 * M_PI * u2);
  spare_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_spare_gaussian_ = true;
  return mean + stddev * z0;
}

double Rng::Exponential(double rate) {
  PDPA_CHECK_GT(rate, 0.0);
  double u = 0.0;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

Rng Rng::Fork() { return Rng(NextU64()); }

}  // namespace pdpa
