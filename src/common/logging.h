// Minimal leveled logging and assertion macros.
//
// The library is usable both from deterministic simulations (where logging is
// usually off) and from interactive examples, so the level is a process-wide
// runtime switch rather than a compile-time constant.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace pdpa {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  // Suppresses all logging.
  kNone = 4,
};

// Sets the process-wide minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Parses "debug|info|warning|error|none" (the --log_level flag values).
// Returns false on an unknown name and leaves `out` untouched.
bool ParseLogLevel(const std::string& name, LogLevel* out);

// Simulation-time log prefix: while a simulation is running it publishes its
// clock here (integer microseconds) and every log line gets a "t=12.345s"
// prefix, so PDPA_LOG output correlates with the structured event log.
// Cleared (no prefix) outside simulation runs.
//
// The published clock is thread-local: the sweep engine runs N simulations
// concurrently, and each worker thread's log lines carry the clock of the
// simulation *that thread* is driving, never a neighbour's.
void SetLogSimTimeUs(std::int64_t t_us);
void ClearLogSimTime();

// Emits one formatted log line to stderr. Prefer the PDPA_LOG macro.
void LogMessage(LogLevel level, const char* file, int line, const std::string& message);

// Internal helper that builds the message with stream syntax and emits it on
// destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line) : level_(level), file_(file), line_(line) {}
  ~LogLine() { LogMessage(level_, file_, line_, stream_.str()); }

  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace pdpa

#define PDPA_LOG(level)                                                          \
  if (static_cast<int>(::pdpa::LogLevel::k##level) < static_cast<int>(::pdpa::GetLogLevel())) { \
  } else                                                                         \
    ::pdpa::LogLine(::pdpa::LogLevel::k##level, __FILE__, __LINE__)

// Fatal assertion: always on, used for programming errors and invariant
// violations. Prints the failed condition and aborts.
#define PDPA_CHECK(condition)                                                       \
  if (condition) {                                                                  \
  } else                                                                            \
    ::pdpa::FatalLine(__FILE__, __LINE__, #condition)

#define PDPA_CHECK_GE(a, b) PDPA_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "
#define PDPA_CHECK_LE(a, b) PDPA_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define PDPA_CHECK_GT(a, b) PDPA_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define PDPA_CHECK_LT(a, b) PDPA_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define PDPA_CHECK_EQ(a, b) PDPA_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define PDPA_CHECK_NE(a, b) PDPA_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "

namespace pdpa {

// Stream-capable fatal error: aborts the process on destruction.
class FatalLine {
 public:
  FatalLine(const char* file, int line, const char* condition);
  ~FatalLine();  // Aborts the process.

  FatalLine(const FatalLine&) = delete;
  FatalLine& operator=(const FatalLine&) = delete;

  template <typename T>
  FatalLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace pdpa

#endif  // SRC_COMMON_LOGGING_H_
