#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace pdpa {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

// Sentinel: no simulation clock published.
constexpr std::int64_t kNoSimTime = INT64_MIN;
// Thread-local so concurrent sweep workers each prefix their own sim clock.
thread_local std::int64_t t_log_sim_time_us = kNoSimTime;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

bool ParseLogLevel(const std::string& name, LogLevel* out) {
  if (name == "debug") {
    *out = LogLevel::kDebug;
  } else if (name == "info") {
    *out = LogLevel::kInfo;
  } else if (name == "warning") {
    *out = LogLevel::kWarning;
  } else if (name == "error") {
    *out = LogLevel::kError;
  } else if (name == "none") {
    *out = LogLevel::kNone;
  } else {
    return false;
  }
  return true;
}

void SetLogSimTimeUs(std::int64_t t_us) { t_log_sim_time_us = t_us; }

void ClearLogSimTime() { t_log_sim_time_us = kNoSimTime; }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < g_log_level.load()) {
    return;
  }
  const std::int64_t t_us = t_log_sim_time_us;
  if (t_us == kNoSimTime) {
    std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[%s t=%.3fs %s:%d] %s\n", LevelName(level),
                 static_cast<double>(t_us) / 1e6, Basename(file), line, message.c_str());
  }
}

FatalLine::FatalLine(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalLine::~FatalLine() {
  std::fprintf(stderr, "[FATAL %s:%d] %s\n", Basename(file_), line_, stream_.str().c_str());
  std::abort();
}

}  // namespace pdpa
