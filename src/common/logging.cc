#include "src/common/logging.h"

#include <atomic>
#include <cstdio>

namespace pdpa {
namespace {

std::atomic<int> g_log_level{static_cast<int>(LogLevel::kWarning)};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kNone:
      return "NONE";
  }
  return "?";
}

// Strips the directory part so log lines stay short.
const char* Basename(const char* path) {
  const char* base = path;
  for (const char* p = path; *p != '\0'; ++p) {
    if (*p == '/') {
      base = p + 1;
    }
  }
  return base;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_log_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_log_level.load()); }

void LogMessage(LogLevel level, const char* file, int line, const std::string& message) {
  if (static_cast<int>(level) < g_log_level.load()) {
    return;
  }
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), Basename(file), line, message.c_str());
}

FatalLine::FatalLine(const char* file, int line, const char* condition)
    : file_(file), line_(line) {
  stream_ << "Check failed: " << condition << " ";
}

FatalLine::~FatalLine() {
  std::fprintf(stderr, "[FATAL %s:%d] %s\n", Basename(file_), line_, stream_.str().c_str());
  std::abort();
}

}  // namespace pdpa
