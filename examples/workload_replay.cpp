// Example: archive a workload as a Standard Workload Format (SWF) trace,
// read it back, and replay it — the repeatable-submission methodology the
// paper uses for all its experiments (Sec. 5), including writing a Paraver
// trace of the execution.
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/qs/swf.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

void Run() {
  // 1. Generate workload 3 at 80% load and archive it as SWF.
  const std::vector<JobSpec> jobs = BuildWorkload(WorkloadId::kW3, 0.8, /*seed=*/2026);
  {
    std::ofstream out("w3_load80.swf");
    WriteSwf(jobs, out, "w3 at 80% load, seed 2026");
  }
  std::printf("wrote %zu jobs to w3_load80.swf\n", jobs.size());

  // 2. Read the trace back.
  std::ifstream in("w3_load80.swf");
  std::vector<JobSpec> replayed;
  std::string error;
  if (!ReadSwf(in, &replayed, &error)) {
    std::printf("SWF parse error: %s\n", error.c_str());
    return;
  }
  std::printf("parsed %zu jobs back\n", replayed.size());

  // 3. Replay under PDPA with tracing on.
  ExperimentConfig config;
  config.policy = PolicyKind::kPdpa;
  config.jobs_override = replayed;
  config.record_trace = true;
  const ExperimentResult result = RunExperiment(config);

  std::printf("\nreplay under %s: %d jobs, makespan %.1f s, peak ML %d, util %.0f%%\n",
              result.policy_name.c_str(), result.metrics.jobs, result.metrics.makespan_s,
              result.max_ml, result.utilization * 100.0);
  for (const auto& [app_class, metrics] : result.metrics.per_class) {
    std::printf("  %-8s x%-3d response %7.1f s  exec %7.1f s  avg cpus %5.1f\n",
                AppClassName(app_class), metrics.count, metrics.avg_response_s,
                metrics.avg_exec_s, metrics.avg_alloc);
  }

  std::ofstream prv("w3_load80_pdpa.prv");
  prv << result.paraver_trace;
  std::printf("\nParaver trace written to w3_load80_pdpa.prv\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
