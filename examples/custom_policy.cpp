// Example: implementing your own scheduling policy against the public
// SchedulingPolicy interface and racing it against PDPA.
//
// The custom policy here is "RequestFit": give every job exactly what it
// asked for, admit a new job only when its full request fits (a classic
// rigid space-sharing scheduler). It illustrates the fragmentation problem
// the paper's Sec. 4.3 discusses: a 30-CPU request leaves 30 CPUs idle
// when the next job also wants 30+.
#include <cstdio>
#include <memory>

#include "src/qs/queuing_system.h"
#include "src/sim/simulation.h"
#include "src/workload/experiment.h"

namespace pdpa {
namespace {

class RequestFit : public SchedulingPolicy {
 public:
  std::string name() const override { return "RequestFit"; }

  AllocationPlan OnJobStart(const PolicyContext& ctx, JobId job) override {
    AllocationPlan plan;
    for (const PolicyJobInfo& info : ctx.jobs) {
      if (info.id == job) {
        plan[job] = info.request;
      }
    }
    return plan;
  }

  AllocationPlan OnJobFinish(const PolicyContext& ctx, JobId job) override {
    (void)ctx;
    (void)job;
    return AllocationPlan{};
  }

  bool ShouldAdmit(const PolicyContext& ctx) const override {
    // Rigid: the head-of-queue job needs its full request. The QS does not
    // tell us the next request, so be conservative: require the largest
    // possible request (30) to fit unless the machine is empty.
    if (ctx.jobs.empty()) {
      return true;
    }
    return ctx.free_cpus >= 30;
  }
};

ExperimentResult RunWith(std::unique_ptr<SchedulingPolicy> policy,
                         const std::vector<JobSpec>& jobs) {
  Simulation sim;
  ResourceManager::Params rm_params;
  rm_params.num_cpus = 60;
  ResourceManager rm(rm_params, std::move(policy), &sim, nullptr, Rng(1));
  QueuingSystem qs(&sim, &rm, jobs);
  rm.Start();
  qs.Start();
  SimTime horizon = 0;
  while (!qs.AllJobsDone() && sim.now() < 4 * 3600 * kSecond) {
    horizon += 60 * kSecond;
    sim.RunUntil(horizon);
  }
  rm.Stop();
  ExperimentResult result;
  result.policy_name = "custom";
  result.metrics = ComputeMetrics(qs.outcomes(), rm.alloc_integral_us());
  result.max_ml = qs.max_ml();
  return result;
}

void Run() {
  std::printf(
      "custom_policy: RequestFit (rigid) vs PDPA on workload w3 (untuned: apsi\n"
      "asks for 30 CPUs it cannot use), load 100%%\n\n");
  const std::vector<JobSpec> jobs =
      BuildWorkload(WorkloadId::kW3, 1.0, /*seed=*/11, /*untuned=*/true);

  const ExperimentResult rigid = RunWith(std::make_unique<RequestFit>(), jobs);

  ExperimentConfig config;
  config.workload = WorkloadId::kW3;
  config.load = 1.0;
  config.policy = PolicyKind::kPdpa;
  config.seed = 11;
  config.jobs_override = jobs;
  const ExperimentResult pdpa = RunExperiment(config);

  std::printf("%-12s %-10s %12s %12s\n", "policy", "class", "response(s)", "exec(s)");
  for (const auto* result : {&rigid, &pdpa}) {
    for (const auto& [app_class, metrics] : result->metrics.per_class) {
      std::printf("%-12s %-10s %12.1f %12.1f\n",
                  result == &rigid ? "RequestFit" : "PDPA", AppClassName(app_class),
                  metrics.avg_response_s, metrics.avg_exec_s);
    }
  }
  std::printf("\nmakespan: RequestFit %.0f s vs PDPA %.0f s\n", rigid.metrics.makespan_s,
              pdpa.metrics.makespan_s);
  std::printf(
      "Rigid allocation honors every request, so untuned apsi jobs burn 30\n"
      "CPUs for nothing and the queue explodes; PDPA measures, trims them to\n"
      "1-2 CPUs, raises the multiprogramming level (%d vs %d) and wins.\n",
      pdpa.max_ml, rigid.max_ml);
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
