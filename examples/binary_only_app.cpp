// Example: the "binary-only" path of the paper's runtime (Sec. 3.1).
//
// When source code is not available, SelfAnalyzer calls cannot be inserted
// by the compiler: the runtime only sees the stream of parallel loops the
// binary executes. The Dynamic Periodicity Detector discovers the outer
// loop's period from that stream, and from then on the SelfTuner measures
// iterations and PDPA manages the application exactly as in the
// source-available case. This example runs one live application in that
// mode and prints what the detector found.
#include <cstdio>
#include <memory>

#include "src/rt/process_rm.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("binary_only_app: DPD-driven self-tuning on live threads\n\n");

  InProcessRm::Params params;
  params.cpu_budget = 6;
  params.quantum_ms = 20.0;
  params.pdpa.step = 2;
  params.pdpa.target_eff = 0.5;  // tolerant of timer noise on small hosts
  InProcessRm rm(params);

  // The "binary": 5 parallel loops per outer iteration, latency-bound and
  // perfectly scalable. The runtime is NOT told where iterations start.
  RtApplication::Options options;
  options.loops_per_iteration = 5;
  options.detect_iterations_with_dpd = true;
  SelfTuner::Params tuner;
  tuner.baseline_iterations = 1;
  tuner.baseline_width = 1;
  tuner.amdahl_factor = 1.0;
  auto app = std::make_unique<RtApplication>(0, "opaque-binary",
                                             std::make_unique<LatencyKernel>(50.0, 0.0, 1.0),
                                             /*iterations=*/25, /*request=*/6, tuner, options);
  RtApplication* raw = app.get();
  rm.AddApplication(std::move(app));
  rm.Run();

  const PdpaAutomaton* automaton = rm.AutomatonFor(0);
  std::printf("iterations executed:            %d\n", raw->completed_iterations());
  std::printf("iteration boundaries detected:  %d (detector locks after ~3 periods)\n",
              raw->detected_boundaries());
  std::printf("baseline measured:              %s (%.1f ms per iteration on 1 worker)\n",
              raw->tuner().baseline_done() ? "yes" : "no",
              raw->tuner().baseline_seconds() * 1000.0);
  std::printf("final PDPA state / allocation:  %s / %d workers\n",
              PdpaStateName(automaton->state()), automaton->current_alloc());
  std::printf(
      "\nThe runtime never received explicit iteration marks: the periodicity\n"
      "detector recovered them from the loop-address stream, which is what\n"
      "lets PDPA manage applications shipped as opaque binaries.\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
