// Quickstart: run one workload under PDPA and Equipartition and compare the
// per-class response/execution times — the library's 60-second tour.
#include <cstdio>

#include "src/workload/experiment.h"

using pdpa::AppClassName;
using pdpa::ExperimentConfig;
using pdpa::ExperimentResult;
using pdpa::PolicyKind;
using pdpa::RunExperiment;
using pdpa::WorkloadId;

int main() {
  std::printf("nanos-pdpa quickstart: workload w2 (bt + hydro2d), load 80%%\n\n");

  for (PolicyKind policy : {PolicyKind::kEquipartition, PolicyKind::kPdpa}) {
    ExperimentConfig config;
    config.workload = WorkloadId::kW2;
    config.load = 0.8;
    config.policy = policy;
    config.seed = 7;

    const ExperimentResult result = RunExperiment(config);
    std::printf("--- %s ---\n", result.policy_name.c_str());
    std::printf("%-10s %6s %12s %12s %10s\n", "class", "jobs", "response(s)", "exec(s)",
                "avg cpus");
    for (const auto& [app_class, metrics] : result.metrics.per_class) {
      std::printf("%-10s %6d %12.1f %12.1f %10.1f\n", AppClassName(app_class), metrics.count,
                  metrics.avg_response_s, metrics.avg_exec_s, metrics.avg_alloc);
    }
    std::printf("makespan %.1f s, peak multiprogramming level %d\n\n",
                result.metrics.makespan_s, result.max_ml);
  }
  std::printf(
      "PDPA measured both applications and split the machine unevenly: bt gets\n"
      "the processors it can use efficiently (and finishes sooner), hydro2d is\n"
      "trimmed to its efficient size and pays a little — the paper's workload-2\n"
      "trade. On workloads with non-scalable applications (see fig09/table3),\n"
      "the same mechanism plus the coordinated multiprogramming level wins big.\n");
  return 0;
}
