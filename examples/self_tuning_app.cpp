// Example: PDPA controlling *live* applications in this process.
//
// Three iterative applications run concurrently on real threads through the
// malleable runtime (src/rt). Each measures its own per-iteration wall time
// (SelfTuner); the in-process resource manager runs one PDPA automaton per
// application and resizes their thread teams within an 8-worker budget.
//
// The kernels are latency-bound (sleep-based), so they exhibit genuine
// wall-clock speedup with team width even on a single-core machine; a
// CPU-bound BusyKernel variant is available in src/rt/kernels.h for
// multi-core hosts.
#include <cstdio>
#include <memory>

#include "src/rt/process_rm.h"

namespace pdpa {
namespace {

void Run() {
  std::printf("self_tuning_app: PDPA on live threads (budget: 8 workers)\n\n");

  InProcessRm::Params params;
  params.cpu_budget = 8;
  params.quantum_ms = 20.0;
  params.pdpa.target_eff = 0.7;
  params.pdpa.high_eff = 0.9;
  params.pdpa.step = 2;
  InProcessRm rm(params);

  SelfTuner::Params tuner;
  tuner.baseline_iterations = 1;
  tuner.baseline_width = 1;
  tuner.amdahl_factor = 1.0;

  // "swim-like": parallelizes perfectly.
  rm.AddApplication(std::make_unique<RtApplication>(
      0, "scalable", std::make_unique<LatencyKernel>(30.0, 0.0, 1.0), /*iterations=*/30,
      /*request=*/6, tuner));
  // "hydro2d-like": mediocre scaling.
  rm.AddApplication(std::make_unique<RtApplication>(
      1, "medium", std::make_unique<LatencyKernel>(30.0, 0.1, 0.6), /*iterations=*/30,
      /*request=*/6, tuner));
  // "apsi-like": does not scale.
  rm.AddApplication(std::make_unique<RtApplication>(
      2, "flat", std::make_unique<LatencyKernel>(30.0, 0.0, 0.05), /*iterations=*/30,
      /*request=*/6, tuner));

  rm.Run();

  std::printf("%-10s %16s %12s\n", "app", "final state", "final CPUs");
  const char* names[] = {"scalable", "medium", "flat"};
  for (JobId job = 0; job < 3; ++job) {
    const PdpaAutomaton* automaton = rm.AutomatonFor(job);
    std::printf("%-10s %16s %12d\n", names[job], PdpaStateName(automaton->state()),
                automaton->current_alloc());
  }
  std::printf(
      "\nPDPA measured real iteration times and converged: the scalable app\n"
      "absorbed the budget, the flat one was trimmed to a single worker.\n");
}

}  // namespace
}  // namespace pdpa

int main() {
  pdpa::Run();
  return 0;
}
